"""Workload-class presets for the stochastic generator.

"Application descriptions may range from full-blown parallel programs
to small benchmarks" (Section 3); these presets are the stochastic
counterparts of common application classes — calibrated by the shape of
the corresponding instrumented workloads in :mod:`repro.apps`, they give
fast-prototyping studies a realistic starting point without writing a
description from scratch.
"""

from __future__ import annotations

from .descriptions import (
    CommunicationBehaviour,
    InstructionMix,
    MemoryBehaviour,
    StochasticAppDescription,
)

__all__ = ["stencil_class", "dense_linear_algebra_class",
           "irregular_class", "comm_bound_class", "WORKLOAD_CLASSES"]


def stencil_class() -> StochasticAppDescription:
    """Jacobi-like: streaming loads, neighbour exchanges, tight loops."""
    return StochasticAppDescription(
        name="stencil-class",
        mix=InstructionMix(load=0.35, store=0.12, loadc=0.04, add=0.30,
                           sub=0.02, mul=0.08, div=0.0, branch=0.08,
                           call=0.005, ret=0.005, float_fraction=0.8,
                           double_data_fraction=0.9),
        memory=MemoryBehaviour(working_set_bytes=512 * 1024,
                               sequential_fraction=0.85,
                               stack_fraction=0.05),
        comm=CommunicationBehaviour(mean_ops_between_rounds=8_000,
                                    min_message_bytes=256,
                                    max_message_bytes=2048,
                                    pattern="neighbour"),
        n_basic_blocks=16, mean_block_len=12.0, loopback_prob=0.85,
        far_jump_prob=0.02, mean_task_cycles=25_000.0)


def dense_linear_algebra_class() -> StochasticAppDescription:
    """Matmul-like: multiply-heavy, large working set, coarse exchanges."""
    return StochasticAppDescription(
        name="dla-class",
        mix=InstructionMix(load=0.35, store=0.06, loadc=0.02, add=0.22,
                           sub=0.02, mul=0.22, div=0.0, branch=0.10,
                           call=0.005, ret=0.005, float_fraction=0.95,
                           double_data_fraction=1.0),
        memory=MemoryBehaviour(working_set_bytes=2 * 1024 * 1024,
                               sequential_fraction=0.6,
                               stack_fraction=0.02),
        comm=CommunicationBehaviour(mean_ops_between_rounds=50_000,
                                    min_message_bytes=4096,
                                    max_message_bytes=65536,
                                    pattern="random"),
        n_basic_blocks=8, mean_block_len=16.0, loopback_prob=0.9,
        far_jump_prob=0.01, mean_task_cycles=150_000.0)


def irregular_class() -> StochasticAppDescription:
    """Graph/pointer-chasing-like: random accesses, branchy, small msgs."""
    return StochasticAppDescription(
        name="irregular-class",
        mix=InstructionMix(load=0.32, store=0.10, loadc=0.06, add=0.16,
                           sub=0.04, mul=0.02, div=0.005, branch=0.24,
                           call=0.04, ret=0.04, float_fraction=0.1,
                           double_data_fraction=0.2),
        memory=MemoryBehaviour(working_set_bytes=8 * 1024 * 1024,
                               sequential_fraction=0.1,
                               stack_fraction=0.3),
        comm=CommunicationBehaviour(mean_ops_between_rounds=4_000,
                                    min_message_bytes=32,
                                    max_message_bytes=512,
                                    async_fraction=0.5,
                                    pattern="random"),
        n_basic_blocks=256, mean_block_len=5.0, loopback_prob=0.4,
        far_jump_prob=0.25, mean_task_cycles=8_000.0)


def comm_bound_class() -> StochasticAppDescription:
    """Exchange-dominated: little computation between big messages."""
    return StochasticAppDescription(
        name="comm-bound-class",
        comm=CommunicationBehaviour(mean_ops_between_rounds=800,
                                    min_message_bytes=8192,
                                    max_message_bytes=131072,
                                    pattern="random"),
        mean_task_cycles=2_000.0)


#: name → factory registry (CLI / sweep convenience).
WORKLOAD_CLASSES = {
    "stencil": stencil_class,
    "dense-linear-algebra": dense_linear_algebra_class,
    "irregular": irregular_class,
    "comm-bound": comm_bound_class,
}
