"""``repro.tracegen`` — trace generation (application → architecture).

The two Mermaid trace generators and their machinery:

* :class:`StochasticGenerator` — synthetic traces from probabilistic
  application descriptions (fast prototyping);
* :class:`AnnotationTranslator` + :class:`VariableDescriptorTable` —
  on-the-fly translation of program annotations (accurate modelling);
* :class:`NodeThread` / :class:`InterleavedStream` — the threaded,
  physical-time-interleaved execution that keeps multiprocessor traces
  valid under simulator control.
"""

from .annotate import AnnotationTranslator
from .descriptions import (
    CommunicationBehaviour,
    InstructionMix,
    MemoryBehaviour,
    StochasticAppDescription,
)
from .presets import (
    WORKLOAD_CLASSES,
    comm_bound_class,
    dense_linear_algebra_class,
    irregular_class,
    stencil_class,
)
from .stochastic import StochasticGenerator
from .threads import (
    FunctionalExecutor,
    InterleavedStream,
    NodeThread,
    ThreadKilled,
    TraceGenerationError,
)
from .vdt import (
    TargetABI,
    VarDescriptor,
    VariableDescriptorTable,
    VarKind,
    VDTError,
)

__all__ = [
    "AnnotationTranslator", "CommunicationBehaviour", "FunctionalExecutor",
    "InstructionMix", "InterleavedStream", "MemoryBehaviour", "NodeThread",
    "StochasticAppDescription", "StochasticGenerator", "TargetABI",
    "WORKLOAD_CLASSES", "comm_bound_class", "dense_linear_algebra_class",
    "irregular_class", "stencil_class",
    "ThreadKilled", "TraceGenerationError", "VDTError", "VarDescriptor",
    "VariableDescriptorTable", "VarKind",
]
