"""The stochastic trace generator.

"The stochastic generator uses a probabilistic application description
to produce realistic synthetic traces of operations.  This technique
represents the behaviour of (a class of) applications with modest
accuracy, which can be useful when fast-prototyping new architectures."

The generator produces both abstraction levels of Fig 4:

* **instruction level** — abstract-machine-instruction traces (with an
  implicit ifetch per instruction, a basic-block loop model for the
  code address stream, and a locality model for the data stream) for
  the single-node computational model;
* **task level** — ``compute(duration)`` + message-passing traces for
  the multi-node communication model.

Communication is generated as matched, deadlock-free exchange rounds
(see :class:`~repro.tracegen.descriptions.CommunicationBehaviour`), so
every synthetic trace set passes
:func:`repro.operations.validate_trace_set` by construction.
"""

from __future__ import annotations

import math

import numpy as np

from ..operations.ops import (
    OpCode,
    Operation,
    arecv,
    asend,
    compute,
    recv,
    send,
)
from ..operations.optypes import ArithType, MemType
from ..operations.trace import Trace, TraceSet
from .descriptions import StochasticAppDescription

__all__ = ["StochasticGenerator"]

_KIND_TO_CODE = {
    "load": OpCode.LOAD, "store": OpCode.STORE, "loadc": OpCode.LOADC,
    "add": OpCode.ADD, "sub": OpCode.SUB, "mul": OpCode.MUL,
    "div": OpCode.DIV, "branch": OpCode.BRANCH, "call": OpCode.CALL,
    "ret": OpCode.RET,
}


class _ExchangeRound:
    """One globally-scheduled communication round."""

    __slots__ = ("pairs", "sizes", "is_async")

    def __init__(self, pairs: list[tuple[int, int]],
                 sizes: dict[tuple[int, int], int], is_async: bool) -> None:
        self.pairs = pairs
        self.sizes = sizes
        self.is_async = is_async


class StochasticGenerator:
    """Synthetic multi-node trace generation from a probabilistic model.

    Parameters
    ----------
    desc:
        The application-class description.
    n_nodes:
        Number of node traces to generate.
    seed:
        Master seed; identical seeds give identical trace sets.
    """

    def __init__(self, desc: StochasticAppDescription, n_nodes: int,
                 seed: int = 0) -> None:
        desc.validate()
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        self.desc = desc
        self.n_nodes = n_nodes
        self.seed = seed
        ss = np.random.SeedSequence(seed)
        children = ss.spawn(n_nodes + 1)
        self._schedule_rng = np.random.default_rng(children[0])
        self._node_rngs = [np.random.default_rng(c) for c in children[1:]]

    # -- global communication schedule ------------------------------------

    def _make_rounds(self, n_rounds: int) -> list[_ExchangeRound]:
        """Draw the shared exchange-round schedule (same for all nodes)."""
        rng = self._schedule_rng
        comm = self.desc.comm
        n = self.n_nodes
        log_lo = math.log(comm.min_message_bytes)
        log_hi = math.log(comm.max_message_bytes)
        rounds = []
        for _ in range(n_rounds):
            if comm.pattern == "neighbour":
                pairs = [(i, i + 1) for i in range(0, n - 1, 2)]
            else:
                perm = rng.permutation(n)
                pairs = [(min(int(perm[i]), int(perm[i + 1])),
                          max(int(perm[i]), int(perm[i + 1])))
                         for i in range(0, n - 1, 2)]
            sizes: dict[tuple[int, int], int] = {}
            for a, b in pairs:
                for key in ((a, b), (b, a)):
                    u = rng.uniform(log_lo, log_hi)
                    sizes[key] = max(int(round(math.exp(u))),
                                     comm.min_message_bytes)
            is_async = bool(rng.random() < comm.async_fraction)
            rounds.append(_ExchangeRound(pairs, sizes, is_async))
        return rounds

    @staticmethod
    def _round_ops(node: int, rnd: _ExchangeRound) -> list[Operation]:
        """This node's operations for one exchange round (matched order)."""
        ops: list[Operation] = []
        for a, b in rnd.pairs:
            if node == a:
                if rnd.is_async:
                    ops.append(asend(rnd.sizes[(a, b)], b))
                    ops.append(arecv(b))
                else:
                    ops.append(send(rnd.sizes[(a, b)], b))
                    ops.append(recv(b))
            elif node == b:
                if rnd.is_async:
                    ops.append(arecv(a))
                    ops.append(asend(rnd.sizes[(b, a)], a))
                else:
                    ops.append(recv(a))
                    ops.append(send(rnd.sizes[(b, a)], a))
        return ops

    # -- instruction-level generation -----------------------------------------

    def _comp_segment(self, node: int, n_instructions: int,
                      state: dict) -> list[Operation]:
        """One run of computational ops, batch-sampled with numpy."""
        desc = self.desc
        rng = self._node_rngs[node]
        mix = desc.mix.weights()
        kinds = [k for k, _ in mix]
        probs = np.array([w for _, w in mix])
        kind_idx = rng.choice(len(kinds), size=n_instructions, p=probs)
        uni = rng.random(size=(n_instructions, 3))

        mem = desc.memory
        slot = max(int(math.ceil(desc.mean_block_len * 2)), 2)
        ws = mem.working_set_bytes
        ops: list[Operation] = []
        append = ops.append
        block = state.setdefault("block", 0)
        pos = state.setdefault("pos", 0)
        blen = state.setdefault("blen", self._block_len(rng))
        seq_cursor = state.setdefault("seq_cursor", 0)

        for i in range(n_instructions):
            # Instruction fetch: the loop model drives the address.
            addr = desc.code_base + (block * slot + min(pos, slot - 1)) \
                * desc.instr_bytes
            append(Operation(OpCode.IFETCH, 0, addr))
            pos += 1
            if pos >= blen:
                pos = 0
                blen = self._block_len(rng)
                r = uni[i, 2]
                if r < desc.loopback_prob:
                    pass  # tight loop: same block again
                elif r < desc.loopback_prob + desc.far_jump_prob:
                    block = int(rng.integers(desc.n_basic_blocks))
                else:
                    block = (block + 1) % desc.n_basic_blocks
            kind = kinds[kind_idx[i]]
            code = _KIND_TO_CODE[kind]
            if code in (OpCode.LOAD, OpCode.STORE):
                if uni[i, 0] < mem.stack_fraction:
                    daddr = mem.stack_base + int(uni[i, 1] * mem.stack_bytes)
                elif uni[i, 0] < mem.stack_fraction + \
                        (1 - mem.stack_fraction) * mem.sequential_fraction:
                    daddr = mem.data_base + seq_cursor
                    seq_cursor = (seq_cursor + 8) % ws
                else:
                    daddr = mem.data_base + int(uni[i, 1] * ws)
                mtype = (MemType.FLOAT64
                         if uni[i, 2] < desc.mix.double_data_fraction
                         else MemType.INT32)
                daddr -= daddr % mtype.nbytes
                append(Operation(code, int(mtype), daddr))
            elif code in (OpCode.ADD, OpCode.SUB, OpCode.MUL, OpCode.DIV):
                if uni[i, 0] < desc.mix.float_fraction:
                    at = (ArithType.FLOAT if uni[i, 1] < 0.5
                          else ArithType.DOUBLE)
                else:
                    at = ArithType.INT
                append(Operation(code, int(at)))
            elif code == OpCode.LOADC:
                append(Operation(code, int(MemType.INT32)))
            else:
                # branch/call/ret target a block boundary.
                target = desc.code_base + int(uni[i, 1]
                                              * desc.n_basic_blocks) \
                    * slot * desc.instr_bytes
                append(Operation(code, 0, target))

        state["block"] = block
        state["pos"] = pos
        state["blen"] = blen
        state["seq_cursor"] = seq_cursor
        return ops

    def _block_len(self, rng: np.random.Generator) -> int:
        return 1 + int(rng.geometric(1.0 / self.desc.mean_block_len))

    def generate_instruction_level(self, ops_per_node: int) -> TraceSet:
        """Synthetic instruction-level traces with matched communication.

        ``ops_per_node`` is a target for *computational* operations per
        node (communication rounds add a few ops on top).
        """
        if ops_per_node < 1:
            raise ValueError("ops_per_node must be >= 1")
        desc = self.desc
        n_rounds = max(int(round(ops_per_node
                                 / desc.comm.mean_ops_between_rounds)), 1) \
            if self.n_nodes > 1 else 0
        rounds = self._make_rounds(n_rounds)
        traces = []
        for node in range(self.n_nodes):
            rng = self._node_rngs[node]
            state: dict = {}
            ops: list[Operation] = []
            remaining = ops_per_node
            segments = n_rounds + 1
            for s in range(segments):
                if segments - s == 1:
                    seg = remaining
                else:
                    mean = remaining / (segments - s)
                    seg = int(rng.poisson(mean)) if mean > 0 else 0
                    seg = min(seg, remaining)
                # Each instruction expands to ifetch + op: halve the count.
                ops.extend(self._comp_segment(node, max(seg // 2, 1), state))
                remaining -= seg
                if s < n_rounds:
                    ops.extend(self._round_ops(node, rounds[s]))
            traces.append(Trace(node, ops))
        return TraceSet(traces)

    # -- task-level generation -----------------------------------------------------

    def generate_task_level(self, n_rounds: int,
                            imbalance: float = 0.1) -> TraceSet:
        """Synthetic task-level traces: compute tasks + exchange rounds.

        ``imbalance`` is the coefficient of variation of task durations
        across nodes within a round (load-balance realism).
        """
        if n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        if imbalance < 0:
            raise ValueError("imbalance must be >= 0")
        desc = self.desc
        rounds = self._make_rounds(n_rounds if self.n_nodes > 1 else 0)
        traces = []
        for node in range(self.n_nodes):
            rng = self._node_rngs[node]
            ops: list[Operation] = []
            for r in range(n_rounds):
                mean = desc.mean_task_cycles
                dur = rng.normal(mean, mean * imbalance) if imbalance else mean
                ops.append(compute(max(float(dur), 1.0)))
                if self.n_nodes > 1:
                    ops.extend(self._round_ops(node, rounds[r]))
            traces.append(Trace(node, ops))
        return TraceSet(traces)
