"""Node threads and physical-time interleaving (Section 3.1).

"To produce the multiple operation traces that are needed for
simulation, both trace generators model concurrent execution by means of
threads ...  Each thread accounts for the behaviour of one processor (or
node) within the parallel machine.  Whenever a thread encounters a
global event, it is suspended until explicitly resumed by the
simulator."

A :class:`NodeThread` runs one node's instrumented program in a real OS
thread under *strict handoff*: exactly one of (simulator, node thread)
executes at any moment, so trace generation is deterministic.  The
thread runs freely while emitting computational operations (local
instructions cannot be affected by other processors) and suspends at
every global event — a communication operation — until the simulator has
completed that event in simulated time.  The resulting multiprocessor
trace "is exactly the one that would be observed if the application was
actually executed on the target machine".

:class:`InterleavedStream` adapts a suspended/resumed thread to the
operation-iterator interface the architecture models consume, and
:class:`FunctionalExecutor` runs a threaded program *without* any
architecture timing (matching communication logically) — used for trace
recording and tests.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Optional

from ..operations.ops import OpCode, Operation
from ..operations.trace import Trace, TraceSet

__all__ = ["NodeThread", "InterleavedStream", "FunctionalExecutor",
           "ThreadKilled", "TraceGenerationError"]

#: Handoff timeout (seconds).  Generous; only trips on a genuine hang.
_HANDOFF_TIMEOUT = 300.0


class ThreadKilled(BaseException):
    """Raised inside a node thread when the generator is shut down.

    Derives from BaseException so instrumented programs cannot
    accidentally swallow it with ``except Exception``.
    """


class TraceGenerationError(RuntimeError):
    """A node thread misbehaved (crashed, hung, or deadlocked)."""


class NodeThread:
    """One node's trace-generating thread with strict handoff.

    ``body`` is called (in the OS thread) with this NodeThread; it emits
    computational operations via :meth:`emit` and suspends at global
    events via :meth:`global_event`.  The simulator side drives it with
    :meth:`advance` and reads :attr:`buffer` / :attr:`pending_op`.
    """

    def __init__(self, node_id: int,
                 body: Callable[["NodeThread"], None]) -> None:
        self.node_id = node_id
        self._body = body
        self._cond = threading.Condition()
        self._turn = "main"             # "main" | "thread"
        self.state = "new"              # new|running|suspended|finished|failed
        self.buffer: deque[Operation] = deque()
        self.pending_op: Optional[Operation] = None
        self.pending_payload: Any = None
        self._resume_value: Any = None
        self._exc: Optional[BaseException] = None
        self._kill = False
        self._thread = threading.Thread(
            target=self._run, name=f"node-thread-{node_id}", daemon=True)

    # -- thread side --------------------------------------------------------

    def _run(self) -> None:
        with self._cond:
            while self._turn != "thread":
                self._cond.wait()
        try:
            self._body(self)
        except ThreadKilled:
            pass
        except BaseException as exc:  # noqa: BLE001 - reported to main side
            self._exc = exc
        with self._cond:
            self.state = "failed" if self._exc is not None else "finished"
            self._turn = "main"
            self._cond.notify_all()

    def emit(self, op: Operation) -> None:
        """Record a computational (local) operation; never suspends."""
        self.buffer.append(op)

    def global_event(self, op: Operation, payload: Any = None) -> Any:
        """Suspend at a global event until the simulator resumes us.

        Returns the value posted by the simulator (for receives, the
        delivered message payload).

        Accepts Table-1 communication operations or any other object
        that declares ``is_global_event`` (e.g. the VSM layer's page
        faults).
        """
        if not getattr(op, "is_global_event", False):
            raise ValueError(f"{op!r} is not a global event")
        with self._cond:
            self.pending_op = op
            self.pending_payload = payload
            self.state = "suspended"
            self._turn = "main"
            self._cond.notify_all()
            while self._turn != "thread":
                if not self._cond.wait(timeout=_HANDOFF_TIMEOUT):
                    raise ThreadKilled()
            if self._kill:
                raise ThreadKilled()
            self.state = "running"
            value = self._resume_value
            self._resume_value = None
            return value

    # -- simulator side -------------------------------------------------------

    def advance(self, resume_value: Any = None) -> None:
        """Start or resume the thread; block until it suspends or finishes."""
        with self._cond:
            if self.state in ("finished", "failed"):
                raise TraceGenerationError(
                    f"node thread {self.node_id} already {self.state}")
            if self.state == "new":
                self.state = "running"
                self._thread.start()
            else:
                self.pending_op = None
                self.pending_payload = None
            self._resume_value = resume_value
            self._turn = "thread"
            self._cond.notify_all()
            while self._turn != "main":
                if not self._cond.wait(timeout=_HANDOFF_TIMEOUT):
                    raise TraceGenerationError(
                        f"node thread {self.node_id} hung (no handoff in "
                        f"{_HANDOFF_TIMEOUT}s)")
        if self.state == "failed":
            raise TraceGenerationError(
                f"node thread {self.node_id} raised "
                f"{type(self._exc).__name__}: {self._exc}") from self._exc

    def close(self) -> None:
        """Kill a suspended thread (simulation aborted early)."""
        with self._cond:
            if self.state not in ("suspended", "running"):
                return
            self._kill = True
            self._turn = "thread"
            self._cond.notify_all()
        self._thread.join(timeout=10.0)

    @property
    def done(self) -> bool:
        return self.state in ("finished", "failed")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<NodeThread {self.node_id} {self.state}>"


class InterleavedStream:
    """Iterator view of a :class:`NodeThread` for the architecture models.

    Yields buffered computational operations, then the pending global
    event exactly once; the *next* ``next()`` after the event resumes the
    thread — i.e. the thread only continues once the simulator has
    finished the event in simulated time (physical-time interleaving).
    Use :meth:`post_result` before that ``next()`` to hand a received
    payload back to the program.
    """

    def __init__(self, thread: NodeThread) -> None:
        self.thread = thread
        self.node = thread.node_id
        self._event_delivered = False
        self._result: Any = None

    def post_result(self, value: Any) -> None:
        """Set the value the suspended thread's global event returns."""
        self._result = value

    def __iter__(self) -> "InterleavedStream":
        return self

    def __next__(self) -> Operation:
        thread = self.thread
        while True:
            if thread.buffer:
                return thread.buffer.popleft()
            if thread.pending_op is not None and not self._event_delivered:
                self._event_delivered = True
                return thread.pending_op
            if thread.done:
                raise StopIteration
            # Either fresh start, or the simulator finished the delivered
            # global event: resume the thread (with any posted result).
            value, self._result = self._result, None
            self._event_delivered = False
            thread.advance(value)

    def chunks(self):
        """Bulk-pull iterator: whole buffered stretches as sequences.

        The thread is suspended whenever the simulator side runs, so
        everything in the buffer already exists — draining it in one
        go cannot run generation ahead of a global event.  Yields each
        buffered stretch as a list, then the pending global event as a
        one-element tuple, with exactly the resume/:meth:`post_result`
        protocol of ``__next__``.  Consuming the flattened chunks is
        equivalent to iterating the stream op by op.
        """
        thread = self.thread
        buffer = thread.buffer
        while True:
            if buffer:
                ops = list(buffer)
                buffer.clear()
                yield ops
            elif thread.pending_op is not None and not self._event_delivered:
                self._event_delivered = True
                yield (thread.pending_op,)
            elif thread.done:
                return
            else:
                value, self._result = self._result, None
                self._event_delivered = False
                thread.advance(value)

    def close(self) -> None:
        self.thread.close()


class FunctionalExecutor:
    """Executes a threaded program logically, with no architecture timing.

    Communication is matched directly between threads (FIFO per ordered
    pair, payloads transferred; sends complete immediately as if
    infinitely buffered), so the executor can *record* complete traces
    for workloads whose control flow does not depend on message timing —
    the paper's trace-file mode.  Detects logical communication deadlock
    (every unfinished thread waiting on a receive with no sender).
    """

    def __init__(self, bodies: list[Callable[[NodeThread], None]]) -> None:
        self.threads = [NodeThread(i, body) for i, body in enumerate(bodies)]
        self.n = len(bodies)

    def record(self) -> TraceSet:
        """Run all threads to completion; returns the full trace set."""
        n = self.n
        threads = self.threads
        traces: list[list[Operation]] = [[] for _ in range(n)]
        # payloads[src][dst]: FIFO of sent payloads awaiting a receive.
        payloads: dict[tuple[int, int], deque] = {}
        # waiting[node] = (acceptable-source set, wants_src_tag) or None.
        waiting: dict[int, Optional[tuple]] = {i: None for i in range(n)}
        runnable = deque(range(n))
        resume_values: dict[int, Any] = {}

        try:
            while runnable:
                node = runnable.popleft()
                thread = threads[node]
                thread.advance(resume_values.pop(node, None))
                traces[node].extend(thread.buffer)
                thread.buffer.clear()
                if thread.done:
                    self._unblock_waiters(waiting, payloads, runnable,
                                          resume_values)
                    continue
                op = thread.pending_op
                traces[node].append(op)
                if op.code in (OpCode.SEND, OpCode.ASEND):
                    key = (node, op.peer)
                    payloads.setdefault(key, deque()).append(
                        thread.pending_payload)
                    runnable.append(node)   # buffered send: never blocks here
                    self._unblock_waiters(waiting, payloads, runnable,
                                          resume_values)
                elif op.code in (OpCode.RECV, OpCode.ARECV):
                    queue = payloads.get((op.peer, node))
                    if queue:
                        resume_values[node] = queue.popleft()
                        runnable.append(node)
                    elif op.code is OpCode.ARECV:
                        # Non-blocking: nothing arrived yet; resume with None.
                        resume_values[node] = None
                        runnable.append(node)
                    else:
                        waiting[node] = (frozenset({op.peer}), False)
                elif getattr(op, "sources", None) is not None:
                    # recv_any extension: take from the lowest-numbered
                    # source with a pending payload, else block on all.
                    for src in sorted(op.sources):
                        queue = payloads.get((src, node))
                        if queue:
                            resume_values[node] = (src, queue.popleft())
                            runnable.append(node)
                            break
                    else:
                        waiting[node] = (frozenset(op.sources), True)
                else:
                    raise TraceGenerationError(
                        f"node {node}: global event {op!r} is not "
                        "recordable (VSM faults and other model-level "
                        "events need a live simulation, not trace-file "
                        "mode)")
            unfinished = [t.node_id for t in threads if not t.done]
            if unfinished:
                raise TraceGenerationError(
                    f"communication deadlock while recording: nodes "
                    f"{unfinished} blocked on receives with no matching "
                    "sends")
        finally:
            for t in threads:
                t.close()
        return TraceSet([Trace(i, ops) for i, ops in enumerate(traces)])

    @staticmethod
    def _unblock_waiters(waiting: dict, payloads: dict, runnable: deque,
                         resume_values: dict) -> None:
        for node, entry in list(waiting.items()):
            if entry is None:
                continue
            sources, wants_tag = entry
            for src in sorted(sources):
                queue = payloads.get((src, node))
                if queue:
                    value = queue.popleft()
                    resume_values[node] = (src, value) if wants_tag \
                        else value
                    waiting[node] = None
                    runnable.append(node)
                    break
