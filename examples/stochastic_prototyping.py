#!/usr/bin/env python
"""Fast prototyping with the stochastic generator (Section 3 + 6).

When a new architecture is only a sketch, there is no application to
instrument — a probabilistic description of the workload class is
enough.  This example models a "typical scientific code" (coarse
compute phases, pairwise exchanges) stochastically, then prototypes
three candidate 16-node machines in the cheap task-level mode, and
shows the slowdown gap to the detailed mode.

Run:  python examples/stochastic_prototyping.py
"""

from repro import Workbench, generic_multicomputer
from repro.analysis import SlowdownMeter, format_table
from repro.tracegen import (
    CommunicationBehaviour,
    StochasticAppDescription,
    StochasticGenerator,
)

WORKLOAD = StochasticAppDescription(
    name="scientific-class",
    mean_task_cycles=80_000.0,             # coarse compute phases
    comm=CommunicationBehaviour(
        mean_ops_between_rounds=20_000,
        min_message_bytes=1024,
        max_message_bytes=32768,
        pattern="random",
    ),
)


def prototype_candidates() -> None:
    candidates = [
        ("cheap: ring + store-and-forward",
         generic_multicomputer("ring", (16,),
                               switching="store_and_forward")),
        ("mid:   mesh + wormhole",
         generic_multicomputer("mesh", (4, 4), switching="wormhole")),
        ("rich:  hypercube + virtual cut-through",
         generic_multicomputer("hypercube", (4,),
                               switching="virtual_cut_through")),
    ]
    rows = []
    for label, machine in candidates:
        traces = StochasticGenerator(WORKLOAD, machine.n_nodes,
                                     seed=7).generate_task_level(40)
        res = Workbench(machine).run_comm_only(traces)
        rows.append({
            "candidate": label,
            "predicted_cycles": res.total_cycles,
            "mean_msg_latency": res.message_latency.mean,
            "efficiency": res.parallel_efficiency(),
        })
    print(format_table(rows, title="16-node candidates, identical "
                       "stochastic workload (task level):"))
    print()


def mode_cost_contrast() -> None:
    machine = generic_multicomputer("mesh", (2, 2))
    meter = SlowdownMeter()
    gen = StochasticGenerator(WORKLOAD, machine.n_nodes, seed=7)
    instr = gen.generate_instruction_level(30_000)
    tasks = StochasticGenerator(WORKLOAD, machine.n_nodes,
                                seed=7).generate_task_level(10)
    wb = Workbench(machine)
    meter.measure("instruction level (detailed)", 4,
                  lambda: wb.run_mixed_traces(instr))
    meter.measure("task level (fast prototyping)", 4,
                  lambda: wb.run_comm_only(tasks))
    print(meter.format())
    a, b = meter.measurements
    print(f"\nSame machine, same workload class: detailed mode costs "
          f"{a.slowdown_per_processor / max(b.slowdown_per_processor, 1e-9):.0f}x "
          f"more host cycles per simulated cycle (Section 6's contrast).")


if __name__ == "__main__":
    prototype_candidates()
    mode_cost_contrast()
