#!/usr/bin/env python
"""Application scaling study with a run-time timeline.

Predicts SPMD matmul speedup on 1..16 nodes of a generic wormhole
multicomputer, then re-runs the 4-node case with a timeline recorder
attached to the node drivers and renders a text Gantt chart — the
headless equivalent of Mermaid's run-time visualization.

Run:  python examples/matmul_scaling.py
"""

from repro import Workbench, generic_multicomputer
from repro.analysis import (
    TimelineRecorder,
    format_table,
    render_gantt,
    speedup_table,
)
from repro.apps import ThreadedApplication, make_matmul
from repro.hybrid import HybridModel
from repro.operations import OpCode


def scaling_study(n_matrix: int = 32) -> None:
    times = {}
    for n in (1, 2, 4, 8, 16):
        machine = generic_multicomputer("mesh", (n, 1) if n > 1 else (1, 1))
        res = Workbench(machine).run_hybrid(make_matmul(n=n_matrix))
        times[n] = res.total_cycles
    rows = speedup_table(times)
    print(format_table(rows, title=f"matmul {n_matrix}x{n_matrix} "
                       "scaling (generic mesh):"))
    print()


def timeline_view(n_matrix: int = 24) -> None:
    machine = generic_multicomputer("mesh", (4, 1))
    model = HybridModel(machine)
    recorder = TimelineRecorder(model.sim)

    # Wrap each node driver stream so state changes mark the timeline.
    app = ThreadedApplication(make_matmul(n=n_matrix), 4)
    streams = app.streams()
    from repro.compmodel import extract_tasks

    def observed_driver(node_id, stream):
        entity = f"node{node_id}"
        task_ops = extract_tasks(model.node_models[node_id], stream)
        for op in task_ops:
            if op.code is OpCode.COMPUTE:
                recorder.mark(entity, "compute")
            elif op.code in (OpCode.SEND, OpCode.ASEND):
                recorder.mark(entity, "send")
            else:
                recorder.mark(entity, "recv")
            yield op
        recorder.mark(entity, "idle")

    try:
        for i, stream in enumerate(streams):
            body = model.network.node_driver(
                i, observed_driver(i, stream),
                payload_source=lambda s=stream: s.thread.pending_payload,
                result_sink=stream.post_result)
            model.sim.process(body, name=f"node{i}")
        model.sim.run(check_deadlock=True)
    finally:
        for s in streams:
            s.close()
    recorder.finish()

    print(f"timeline (matmul {n_matrix}, 4 nodes; node 0 gathers):")
    print(render_gantt(recorder, width=68))
    print()
    for entity in recorder.entities():
        totals = recorder.state_totals(entity)
        parts = ", ".join(f"{k}={v:,.0f}" for k, v in sorted(totals.items()))
        print(f"  {entity}: {parts}")


if __name__ == "__main__":
    scaling_study()
    timeline_view()
