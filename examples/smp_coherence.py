#!/usr/bin/env python
"""Shared-memory and hybrid architectures (Section 4.3).

Three studies on multi-CPU nodes:

1. coherence protocol comparison (MSI vs MESI) under different sharing
   patterns;
2. bus-contention scaling: how many CPUs does one bus support?
3. a hybrid architecture: a ring of 2-CPU SMP nodes where one CPU of
   each node computes while another exchanges messages.

Run:  python examples/smp_coherence.py
"""

from repro import Workbench, smp_node
from repro.analysis import format_table, smp_report
from repro.operations import MemType, compute, load, recv, send, store


def rmw(base: int, lines: int, reps: int) -> list:
    ops = []
    for _ in range(reps):
        for i in range(lines):
            ops.append(load(MemType.INT64, base + 32 * i))
            ops.append(store(MemType.INT64, base + 32 * i))
    return ops


def protocol_comparison() -> None:
    rows = []
    for pattern, trace_fn in (
        ("private", lambda c: rmw(0x100000 * (c + 1), 64, 4)),
        ("shared", lambda c: rmw(0x200000, 64, 4)),
    ):
        for protocol in ("msi", "mesi"):
            wb = Workbench(smp_node(4, coherence=protocol))
            res = wb.run_smp([trace_fn(c) for c in range(4)])
            coh = res.coherence_summary
            rows.append({"pattern": pattern, "protocol": protocol,
                         "cycles": res.total_cycles,
                         "bus_txns": coh["transactions"],
                         "upgrades": coh["bus_upgr"],
                         "invalidations": coh["invalidations"]})
    print(format_table(rows, title="MSI vs MESI (4-CPU node):"))
    print()


def bus_scaling() -> None:
    rows = []
    for n_cpus in (2, 4, 8):
        wb = Workbench(smp_node(n_cpus))
        # Disjoint per-CPU regions: contention comes from the bus alone.
        res = wb.run_smp([rmw(0x100000 + 0x10000 * c, 256, 2)
                          for c in range(n_cpus)])
        rows.append({"cpus": n_cpus, "cycles_to_finish": res.total_cycles})
    print(format_table(rows, title="bus contention: same per-CPU work, "
                       "more CPUs:"))
    print("(flat = perfect scaling; growth = the shared bus saturating)")
    print()


def hybrid_cluster() -> None:
    wb = Workbench(smp_node(2))        # ring of 2 nodes x 2 CPUs
    streams = [
        # node 0: cpu0 computes + sends, cpu1 hammers local memory.
        [[compute(5_000), send(4096, 1), recv(1)],
         rmw(0x100000, 128, 2)],
        # node 1: cpu0 receives + replies, cpu1 computes.
        [[recv(0), compute(2_000), send(4096, 0)],
         rmw(0x300000, 128, 2)],
    ]
    res = wb.run_smp_cluster(streams)
    print("hybrid architecture (2 SMP nodes x 2 CPUs, message ring):")
    print(f"  total simulated time : {res.total_cycles:,.0f} cycles")
    print(f"  messages delivered   : {res.comm.messages_delivered}")
    print(f"  message latency      : "
          f"{res.comm.message_latency.mean:,.0f} cycles mean")
    for node_res in res.smp_results:
        coh = node_res.coherence_summary
        print(f"  node bus transactions: {coh['transactions']}")
    print()
    print(smp_report(res.smp_results[0]))


if __name__ == "__main__":
    protocol_comparison()
    bus_scaling()
    hybrid_cluster()
