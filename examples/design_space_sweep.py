#!/usr/bin/env python
"""Design-space exploration — the workbench's reason to exist.

A computer architect's session: given a fixed workload (SPMD matmul),
sweep the node's L1 cache and the interconnect's topology/switching,
and read off where the cycles go.  Mirrors the parameterized templates
of Figure 3 (a: node, b: network).

Run:  python examples/design_space_sweep.py
"""

from repro import Sweep, Workbench, generic_multicomputer
from repro.analysis import format_table
from repro.apps import alltoall_task_traces, make_matmul


def node_sweep() -> None:
    """Fig 3a: how much L1 does this workload want?"""
    base = generic_multicomputer("mesh", (2, 2))
    program = make_matmul(n=24)

    def set_l1(machine, kib):
        machine.node.cache_levels[0].data.size_bytes = kib * 1024
        machine.node.cache_levels[0].instr.size_bytes = kib * 1024

    def run(machine):
        res = Workbench(machine).run_hybrid(program)
        caches = res.node_summaries[0]["memory_system"]["caches"]
        l1d = next(v for k, v in caches.items() if k.endswith("L1d"))
        return {"cycles": res.total_cycles,
                "l1d_hit_rate": l1d["hit_rate"]}

    rows = Sweep(base).axis("l1_kib", set_l1, [2, 4, 8, 16, 32]).run(run)
    print(format_table(rows, title="L1 size sweep (matmul 24, 2x2 mesh):"))
    print()


def network_sweep() -> None:
    """Fig 3b: which interconnect for an all-to-all-heavy load?"""
    rows = []
    for kind, dims in (("ring", (8,)), ("mesh", (4, 2)),
                       ("hypercube", (3,))):
        for switching in ("store_and_forward", "wormhole"):
            machine = generic_multicomputer(kind, dims,
                                            switching=switching)
            traces = alltoall_task_traces(machine.n_nodes,
                                          block_bytes=2048, rounds=2,
                                          compute_cycles=5_000.0)
            res = Workbench(machine).run_comm_only(traces)
            rows.append({
                "topology": kind,
                "switching": switching,
                "cycles": res.total_cycles,
                "mean_msg_latency": res.message_latency.mean,
                "efficiency": res.parallel_efficiency(),
            })
    print(format_table(rows, title="8-node interconnect sweep "
                       "(all-to-all, task level):"))
    print()


def combined_sweep() -> None:
    """Cross product: both axes at once, through the Sweep helper."""
    base = generic_multicomputer("mesh", (2, 2))
    program = make_matmul(n=16)

    def set_bw(machine, bw):
        machine.network.link_bandwidth = bw

    def set_mem(machine, cycles):
        machine.node.memory.access_cycles = float(cycles)

    sweep = (Sweep(base, "bw x dram")
             .axis("link_bw", set_bw, [1.0, 8.0])
             .axis("dram_cycles", set_mem, [10, 80]))
    rows = sweep.run(lambda m: {
        "cycles": Workbench(m).run_hybrid(program).total_cycles})
    print(format_table(rows, title="link bandwidth x DRAM latency "
                       "(matmul 16):"))


if __name__ == "__main__":
    node_sweep()
    network_sweep()
    combined_sweep()
