#!/usr/bin/env python
"""Quickstart: simulate an instrumented program on a T805-like grid.

Demonstrates the core Mermaid workflow in ~40 lines:

1. pick (or build) a machine configuration;
2. write an instrumented application against the annotation API;
3. run it through the accurate hybrid model;
4. read the reports.

Run:  python examples/quickstart.py
"""

from repro import Workbench, t805_grid
from repro.analysis import comm_report
from repro.operations import ArithType, MemType


def program(ctx):
    """Each node sums a local array, then neighbours exchange results.

    The annotations describe what a compiled program would do: loads,
    arithmetic, a loop back-edge per iteration, and message passing.
    Control flow runs on the host; only *timing* is simulated.
    """
    me, n = ctx.node_id, ctx.n_nodes
    data = ctx.global_var("data", MemType.FLOAT64, 512)

    total = 0.0
    for i in ctx.loop(range(512)):
        ctx.read(data, i)                     # load data[i]
        ctx.add(ArithType.DOUBLE)             # total += ...
        total += float(i)                     # the host's real arithmetic

    # Ring exchange: even nodes send first (deterministic pairing).
    right, left = (me + 1) % n, (me - 1) % n
    if me % 2 == 0:
        ctx.send(right, 8, payload=total)
        neighbour_total = ctx.recv(left)
    else:
        neighbour_total = ctx.recv(left)
        ctx.send(right, 8, payload=total)
    assert neighbour_total == total           # SPMD: same everywhere


def main() -> None:
    machine = t805_grid(2, 2)                 # 4 transputers, 2x2 mesh
    wb = Workbench(machine)

    result = wb.run_hybrid(program)

    print(f"machine: {machine.name} ({machine.n_nodes} nodes @ "
          f"{machine.node.cpu.clock_hz / 1e6:.0f} MHz)")
    print(f"simulated time : {result.total_cycles:,.0f} cycles "
          f"({result.seconds * 1e3:.3f} ms)")
    print(f"instructions   : {result.total_instructions:,}")
    print(f"messages       : {result.comm.messages_delivered}, mean "
          f"latency {result.comm.message_latency.mean:,.0f} cycles")
    print()
    print(comm_report(result.comm))


if __name__ == "__main__":
    main()
