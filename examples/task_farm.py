#!/usr/bin/env python
"""Dynamic load balancing: the schedule depends on the architecture.

A self-scheduling task farm (master on node 0, workers elsewhere,
``recv_any`` servicing whoever finishes first) runs on two machines
that differ only in link bandwidth.  Because task assignment follows
simulated completion order, the two machines produce *different
schedules* — the behaviour execution-driven simulation exists to
capture, and the reason static traces cannot model runtime systems
(Section 2's trace-validity argument).

Run:  python examples/task_farm.py
"""

from repro import Workbench, generic_multicomputer, vary_machine
from repro.analysis import format_table
from repro.apps import make_master_worker

N_TASKS = 32
SEED = 11


def farm_on(machine) -> tuple[dict, float]:
    collect: dict = {}
    result = Workbench(machine).run_hybrid(
        make_master_worker(n_tasks=N_TASKS, mean_flops=600, seed=SEED,
                           task_bytes=8192, collect=collect))
    return collect, result.total_cycles


def main() -> None:
    base = generic_multicomputer("mesh", (2, 2))
    slow, fast = vary_machine(
        base, lambda m, bw: setattr(m.network, "link_bandwidth", bw),
        [0.25, 16.0])

    slow_sched, slow_cycles = farm_on(slow)
    fast_sched, fast_cycles = farm_on(fast)

    rows = []
    for worker in sorted(slow_sched["per_worker"]):
        rows.append({
            "worker": worker,
            "tasks_slow_links": slow_sched["per_worker"][worker],
            "tasks_fast_links": fast_sched["per_worker"][worker],
        })
    print(format_table(rows, title=f"{N_TASKS} tasks, same seed, two "
                       "interconnects:"))
    print()
    print(f"slow links: {slow_cycles:,.0f} cycles")
    print(f"fast links: {fast_cycles:,.0f} cycles "
          f"({slow_cycles / fast_cycles:.2f}x faster)")
    moved = sum(1 for t, w in slow_sched["assignments"].items()
                if fast_sched["assignments"][t] != w)
    print(f"tasks assigned to a different worker: {moved}/{N_TASKS}")
    print("\nThe farm self-schedules in simulated time, so the machine "
          "shapes the schedule; a pre-recorded trace could not show this.")


if __name__ == "__main__":
    main()
