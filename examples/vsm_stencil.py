#!/usr/bin/env python
"""Virtual shared memory: the paper's future work, running.

Section 5.1: "we will use a virtual shared memory in the future to hide
all explicit communication."  This example writes a 1-D stencil twice —
once with explicit halo messages, once against a SharedRegion where
page faults move the data — and compares predicted time and traffic.

Run:  python examples/vsm_stencil.py
"""

from repro import Workbench, generic_multicomputer
from repro.operations import ArithType, MemType
from repro.vsm import SharedRegion, VSMConfig, VSMModel

N = 512           # grid points
ITERS = 3
PAGE = 1024       # bytes


def message_passing_program(ctx):
    """Classic halo exchange: communication is explicit."""
    me, p = ctx.node_id, ctx.n_nodes
    local = N // p
    U = ctx.global_var("U", MemType.FLOAT64, local + 2)
    for _ in ctx.loop(range(ITERS)):
        if me % 2 == 0:
            if me + 1 < p:
                ctx.send(me + 1, 8)
                ctx.recv(me + 1)
            if me > 0:
                ctx.send(me - 1, 8)
                ctx.recv(me - 1)
        else:
            ctx.recv(me - 1)
            ctx.send(me - 1, 8)
            if me + 1 < p:
                ctx.recv(me + 1)
                ctx.send(me + 1, 8)
        for i in ctx.loop(range(1, local + 1)):
            ctx.read(U, i - 1)
            ctx.read(U, i + 1)
            ctx.add(ArithType.DOUBLE)
            ctx.write(U, i)


def vsm_program(ctx):
    """Same stencil, zero explicit communication: faults do the work."""
    me, p = ctx.node_id, ctx.n_nodes
    local = N // p
    lo, hi = me * local, (me + 1) * local
    grid = SharedRegion(ctx, "grid", N, MemType.FLOAT64, page_bytes=PAGE)
    for _ in ctx.loop(range(ITERS)):
        for i in ctx.loop(range(lo, hi)):
            grid.read(max(i - 1, 0))
            grid.read(min(i + 1, N - 1))
            ctx.add(ArithType.DOUBLE)
            grid.write(i)
        ctx.barrier()


def main() -> None:
    machine = generic_multicomputer("mesh", (4, 1))
    wb = Workbench(machine)

    mp = wb.run_hybrid(message_passing_program)
    print("explicit message passing:")
    print(f"  cycles   : {mp.total_cycles:,.0f}")
    print(f"  messages : {mp.comm.messages_delivered}")
    print()

    model = VSMModel(machine, VSMConfig())
    vs = model.run_application(vsm_program)
    print("virtual shared memory (no explicit communication):")
    print(f"  cycles        : {vs.total_cycles:,.0f}")
    print(f"  page faults   : {vs.faults} "
          f"({vs.vsm['read_faults']} read / {vs.vsm['write_faults']} write)")
    print(f"  pages moved   : {vs.vsm['pages_transferred']} "
          f"({vs.vsm['page_bytes_moved']:,} bytes)")
    print(f"  invalidations : {vs.vsm['invalidations']}")
    print(f"  mean fault    : {vs.vsm['fault_latency']['mean']:,.0f} cycles")
    print()
    ratio = vs.total_cycles / mp.total_cycles
    print(f"VSM / message-passing time ratio: {ratio:.2f}x — the classic "
          "DSM trade: programming transparency for page-granularity "
          "traffic (false sharing at strip boundaries).")


if __name__ == "__main__":
    main()
