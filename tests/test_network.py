"""The multi-node model: NIC semantics, drivers, accounting, deadlock."""

from __future__ import annotations

import pytest

from repro.commmodel import Message, MultiNodeModel
from repro.core.config import MachineConfig, NetworkConfig, TopologyConfig
from repro.operations import arecv, asend, compute, ifetch, recv, send
from repro.pearl import DeadlockError


def make_net(n=4, send_overhead=100.0, recv_overhead=100.0,
             **net_kw) -> MultiNodeModel:
    cfg = NetworkConfig(topology=TopologyConfig(kind="ring", dims=(n,)),
                        send_overhead=send_overhead,
                        recv_overhead=recv_overhead, **net_kw)
    return MultiNodeModel(MachineConfig(name="net", network=cfg).validate())


class TestBasics:
    def test_compute_only(self):
        net = make_net()
        res = net.run([[compute(100)], [compute(250)], [], []])
        assert res.total_cycles == 250.0
        assert res.activity[1].compute_cycles == 250.0

    def test_messages_delivered_and_latency(self):
        net = make_net()
        res = net.run([[send(512, 1)], [recv(0)], [], []])
        assert res.messages_delivered == 1
        assert res.message_latency.count == 1
        assert res.message_latency.mean > 0

    def test_wrong_stream_count(self):
        net = make_net(4)
        with pytest.raises(ValueError, match="4 op streams"):
            net.run([[], []])

    def test_computational_op_rejected(self):
        net = make_net()
        with pytest.raises(ValueError, match="task-level"):
            net.run([[ifetch(0)], [], [], []])

    def test_result_summary_shape(self):
        net = make_net()
        res = net.run([[send(64, 1)], [recv(0)], [], []])
        s = res.summary()
        assert s["machine"] == "net"
        assert len(s["nodes"]) == 4
        assert "engine" in s and "message_latency" in s


class TestSynchronousSemantics:
    def test_sync_send_blocks_until_delivery(self):
        net = make_net(send_overhead=0.0, recv_overhead=0.0)
        res = net.run([
            [send(4096, 1), compute(1)],
            [compute(50000), recv(0)],
            [], []])
        # Sender's compute(1) happens only after delivery: finish time of
        # node 0 >= message latency.
        assert res.activity[0].finish_time >= res.message_latency.mean

    def test_recv_blocks_until_arrival(self):
        net = make_net()
        res = net.run([
            [compute(10000), send(64, 1)],
            [recv(0)],
            [], []])
        assert res.activity[1].recv_wait_cycles > 5000

    def test_buffered_arrival_before_recv(self):
        net = make_net()
        res = net.run([
            [send(64, 1)],
            [compute(50000), recv(0)],
            [], []])
        # Message waited in the NIC buffer; recv sees no network wait.
        assert res.activity[1].recv_wait_cycles == pytest.approx(0.0)


class TestAsynchronousSemantics:
    def test_asend_does_not_block(self):
        net = make_net(send_overhead=10.0)
        res = net.run([
            [asend(1 << 20, 1), compute(5)],   # huge message
            [recv(0)],
            [], []])
        act = net.activity[0]
        # Sender finished after overhead + compute, long before delivery.
        assert act.finish_time < res.total_cycles

    def test_arecv_nonblocking_when_empty(self):
        net = make_net(recv_overhead=10.0)
        res = net.run([
            [compute(100000), send(64, 1)],
            [arecv(0), compute(7)],
            [], []])
        # Node 1 never waits for the late message.
        assert net.activity[1].finish_time < 100000
        # The arrival was absorbed by the pre-posted receive.
        assert net.nics[1].buffered_messages == 0
        assert net.nics[1].stats.pre_posted == 1

    def test_arecv_consumes_buffered(self):
        net = make_net()
        net.run([
            [send(64, 1)],
            [compute(100000), arecv(0)],
            [], []])
        assert net.nics[1].buffered_messages == 0
        assert net.nics[1].stats.pre_posted == 0


class TestOrdering:
    def test_fifo_between_pair(self):
        """Messages between one pair arrive (and match) in send order."""
        net = make_net(send_overhead=0.0, recv_overhead=0.0)
        payload_log = []
        # Use the hybrid hooks to observe matched payloads.
        sizes = [100, 2000, 50]
        ops0 = [send(s, 1) for s in sizes]
        payloads = iter(["a", "b", "c"])
        ops1 = [recv(0), recv(0), recv(0)]
        net.sim.process(net.node_driver(
            0, iter(ops0), payload_source=lambda: next(payloads)))
        net.sim.process(net.node_driver(
            1, iter(ops1), result_sink=payload_log.append))
        net.sim.process(net.node_driver(2, iter([])))
        net.sim.process(net.node_driver(3, iter([])))
        net.sim.run(check_deadlock=True)
        assert payload_log == ["a", "b", "c"]


class TestDeadlockDetection:
    def test_unmatched_recv_detected(self):
        net = make_net()
        with pytest.raises(DeadlockError) as exc:
            net.run([[recv(1)], [], [], []])
        assert any("node0" in name for name in exc.value.blocked)


class TestAccounting:
    def test_overhead_split(self):
        net = make_net(send_overhead=100.0, recv_overhead=100.0)
        res = net.run([
            [send(64, 1)],
            [compute(100000), recv(0)],
            [], []])
        a0 = res.activity[0]
        assert a0.overhead_cycles == pytest.approx(100.0)
        a1 = res.activity[1]
        assert a1.overhead_cycles == pytest.approx(100.0)
        assert a1.recv_wait_cycles == pytest.approx(0.0)

    def test_parallel_efficiency_bounds(self):
        net = make_net()
        res = net.run([[compute(100)], [compute(100)],
                       [compute(100)], [compute(100)]])
        assert res.parallel_efficiency() == pytest.approx(1.0)

    def test_link_utilization_reported(self):
        net = make_net()
        res = net.run([[send(4096, 1)], [recv(0)], [], []])
        assert any(u > 0 for u in res.link_utilization.values())


class TestMessageObject:
    def test_split_and_arrival_counting(self):
        msg = Message(0, 1, 1000, synchronous=True)
        pkts = msg.split(256, 8)
        assert len(pkts) == 4
        assert [p.payload_bytes for p in pkts] == [256, 256, 256, 232]
        assert all(p.total_bytes == p.payload_bytes + 8 for p in pkts)
        for _ in range(3):
            assert not msg.packet_arrived()
        assert msg.packet_arrived()
        with pytest.raises(ValueError):
            msg.packet_arrived()

    def test_zero_size_one_packet(self):
        msg = Message(0, 1, 0, synchronous=False)
        pkts = msg.split(256, 8)
        assert len(pkts) == 1 and pkts[0].total_bytes == 8

    def test_latency_requires_delivery(self):
        msg = Message(0, 1, 10, synchronous=True)
        with pytest.raises(ValueError):
            _ = msg.latency
