"""recv_any (occam-ALT extension) and the master/worker runtime."""

from __future__ import annotations

import pytest

from repro import Workbench, generic_multicomputer, vary_machine
from repro.apps import ThreadedApplication, make_master_worker
from repro.commmodel import MultiNodeModel, RecvAnyEvent
from repro.core.config import MachineConfig, NetworkConfig, TopologyConfig
from repro.operations import compute, recv, send


def make_net(n=4, **net_kw) -> MultiNodeModel:
    cfg = NetworkConfig(topology=TopologyConfig(kind="ring", dims=(n,)),
                        send_overhead=0.0, recv_overhead=0.0, **net_kw)
    return MultiNodeModel(MachineConfig(name="net", network=cfg).validate())


class TestRecvAnyEvent:
    def test_needs_sources(self):
        with pytest.raises(ValueError):
            RecvAnyEvent([])

    def test_is_global_event(self):
        ev = RecvAnyEvent([1, 2])
        assert ev.is_global_event
        assert ev.sources == frozenset({1, 2})


class TestNICRecvAny:
    def test_takes_first_arrival(self):
        net = make_net()
        log = []
        ops0 = [RecvAnyEvent([1, 2]), RecvAnyEvent([1, 2])]
        net.sim.process(net.node_driver(0, iter(ops0),
                                        result_sink=log.append))
        net.sim.process(net.node_driver(
            1, iter([compute(5000), send(64, 0)])))
        net.sim.process(net.node_driver(2, iter([send(64, 0)])))
        net.sim.process(net.node_driver(3, iter([])))
        net.sim.run(check_deadlock=True)
        # Node 2 sent immediately; node 1 after 5000 cycles.
        assert [src for src, _ in log] == [2, 1]

    def test_buffered_earliest_wins(self):
        net = make_net()
        log = []
        # Receiver sleeps; both messages buffer; earliest delivery wins.
        ops0 = [compute(50_000), RecvAnyEvent([1, 2])]
        net.sim.process(net.node_driver(0, iter(ops0),
                                        result_sink=log.append))
        net.sim.process(net.node_driver(1, iter([compute(100),
                                                 send(64, 0)])))
        net.sim.process(net.node_driver(2, iter([send(64, 0)])))
        net.sim.process(net.node_driver(3, iter([])))
        net.sim.run(check_deadlock=True)
        assert log[0][0] == 2      # node 2's message arrived first

    def test_specific_recv_unaffected(self):
        """recv(source) still matches only its source even when another
        node's message is buffered."""
        net = make_net()
        res = net.run([
            [recv(2)],                # must wait for node 2, not node 1
            [send(64, 0)],
            [compute(10_000), send(64, 0)],
            [],
        ])
        assert res.activity[0].finish_time >= 10_000


class TestMasterWorker:
    def test_all_tasks_done_and_balanced(self):
        collect: dict = {}
        wb = Workbench(generic_multicomputer("mesh", (2, 2)))
        res = wb.run_hybrid(make_master_worker(n_tasks=24, seed=1,
                                               collect=collect))
        assert sum(collect["per_worker"].values()) == 24
        assert set(collect["per_worker"]) == {1, 2, 3}
        # Dynamic scheduling: every worker got something.
        assert all(v > 0 for v in collect["per_worker"].values())
        # Messages: 3 requests + 24 tasks + 24 results + 3 poisons.
        assert res.comm.messages_delivered == 3 + 24 + 24 + 3

    def test_schedule_is_architecture_dependent(self):
        """The defining execution-driven property at system level: a
        different machine yields a different assignment."""
        def schedule(machine):
            collect: dict = {}
            Workbench(machine).run_hybrid(
                make_master_worker(n_tasks=30, seed=2, collect=collect))
            return collect["assignments"]

        base = generic_multicomputer("mesh", (2, 2))
        slow, fast = vary_machine(
            base, lambda m, bw: setattr(m.network, "link_bandwidth", bw),
            [0.25, 16.0])
        # Same program + seed, different interconnects.
        assert schedule(slow) != schedule(fast)

    def test_deterministic_per_machine(self):
        def schedule():
            collect: dict = {}
            wb = Workbench(generic_multicomputer("mesh", (2, 2)))
            wb.run_hybrid(make_master_worker(n_tasks=20, seed=3,
                                             collect=collect))
            return collect["assignments"]
        assert schedule() == schedule()

    def test_needs_two_nodes(self):
        wb = Workbench(generic_multicomputer("mesh", (1, 1)))
        with pytest.raises(Exception, match="at least 2"):
            wb.run_hybrid(make_master_worker(n_tasks=4))

    def test_recording_supports_recv_any(self):
        collect: dict = {}
        ts = ThreadedApplication(
            make_master_worker(n_tasks=12, seed=4, collect=collect),
            4).record()
        assert sum(collect["per_worker"].values()) == 12
        # Logical recording picks lowest-id ready worker; still a
        # complete, matched trace modulo the RecvAnyEvent markers.
        assert len(ts) == 4


class TestRecvAnyInContext:
    def test_default_sources_all_others(self):
        got = {}

        def program(ctx):
            if ctx.node_id == 0:
                got["pair"] = ctx.recv_any()
            else:
                if ctx.node_id == 2:
                    ctx.send(0, 8, payload="hi")

        wb = Workbench(generic_multicomputer("mesh", (2, 2)))
        wb.run_hybrid(program)
        assert got["pair"] == (2, "hi")
