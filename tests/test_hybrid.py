"""Hybrid model: execution-driven + trace-driven co-simulation."""

from __future__ import annotations

import pytest

from repro.apps import ThreadedApplication
from repro.core.config import (
    CacheConfig,
    CacheLevelConfig,
    MachineConfig,
    NetworkConfig,
    NodeConfig,
    TopologyConfig,
)
from repro.hybrid import HybridModel
from repro.operations import ArithType, MemType
from repro.pearl import DeadlockError


def machine(n=4) -> MachineConfig:
    return MachineConfig(
        name="hyb",
        node=NodeConfig(cache_levels=[CacheLevelConfig(data=CacheConfig())]),
        network=NetworkConfig(
            topology=TopologyConfig(kind="ring", dims=(n,)))).validate()


def exchange_program(ctx):
    me, n = ctx.node_id, ctx.n_nodes
    X = ctx.global_var("x", MemType.FLOAT64, 64)
    for i in ctx.loop(range(64)):
        ctx.read(X, i)
        ctx.add(ArithType.DOUBLE)
    right, left = (me + 1) % n, (me - 1) % n
    if me % 2 == 0:
        ctx.send(right, 512, payload=me)
        got = ctx.recv(left)
    else:
        got = ctx.recv(left)
        ctx.send(right, 512, payload=me)
    assert got == left


class TestExecutionDriven:
    def test_runs_and_accounts(self):
        hm = HybridModel(machine())
        res = hm.run_application(ThreadedApplication(exchange_program, 4))
        assert res.total_cycles > 0
        assert res.total_instructions > 4 * 64
        assert res.comm.messages_delivered == 4
        assert len(res.node_summaries) == 4
        assert res.seconds == pytest.approx(
            res.total_cycles / 100e6)

    def test_compute_time_matches_node_models(self):
        hm = HybridModel(machine())
        res = hm.run_application(ThreadedApplication(exchange_program, 4))
        for i in range(4):
            # The network saw exactly the cycles the node model charged.
            assert res.comm.activity[i].compute_cycles == pytest.approx(
                res.task_stats[i].total_task_cycles)

    def test_node_count_mismatch(self):
        hm = HybridModel(machine(4))
        with pytest.raises(ValueError, match="nodes"):
            hm.run_application(ThreadedApplication(exchange_program, 2))

    def test_deadlocking_program_detected_and_threads_cleaned(self):
        def bad(ctx):
            ctx.recv((ctx.node_id + 1) % ctx.n_nodes)   # everyone waits
        hm = HybridModel(machine())
        app = ThreadedApplication(bad, 4)
        with pytest.raises(DeadlockError):
            hm.run_application(app)

    def test_payload_dependent_control_flow(self):
        """The defining execution-driven property: behaviour follows
        received data."""
        log = []

        def program(ctx):
            if ctx.node_id == 0:
                ctx.send(1, 8, payload="long")
            elif ctx.node_id == 1:
                mode = ctx.recv(0)
                reps = 10 if mode == "long" else 1
                for _ in ctx.loop(range(reps)):
                    ctx.add(ArithType.INT)
                log.append(reps)
        hm = HybridModel(machine(2))
        # ring of 2
        m = machine(2)
        hm = HybridModel(m)
        hm.run_application(ThreadedApplication(program, 2))
        assert log == [10]


class TestTraceDriven:
    def test_recorded_traces_reproduce_stream_timing(self):
        """For payload-independent programs, trace-file mode and
        execution-driven mode give identical simulated time."""
        app = ThreadedApplication(exchange_program, 4)
        recorded = app.record()

        hm_stream = HybridModel(machine())
        t_stream = hm_stream.run_application(
            ThreadedApplication(exchange_program, 4)).total_cycles

        hm_trace = HybridModel(machine())
        t_trace = hm_trace.run_traces(recorded).total_cycles
        assert t_trace == pytest.approx(t_stream)

    def test_trace_count_mismatch(self):
        hm = HybridModel(machine(4))
        with pytest.raises(ValueError):
            hm.run_traces([[], []])


class TestConfigGuards:
    def test_multi_cpu_machine_rejected(self):
        m = machine()
        m.node.n_cpus = 2
        with pytest.raises(ValueError, match="single-CPU"):
            HybridModel(m)


class TestAgainstPaperStructure:
    def test_comm_only_faster_than_hybrid_in_host_time(self):
        """Fig 2's point: the task-level mode costs far less host work.

        We proxy host work by the number of kernel events processed:
        the hybrid run executes every abstract instruction, comm-only
        executes only task events.
        """
        app = ThreadedApplication(exchange_program, 4)
        hm = HybridModel(machine())
        res = hm.run_application(app)
        instr = res.total_instructions
        comm_ops = sum(t.communication_ops for t in res.task_stats)
        assert instr > 10 * comm_ops
