"""Direct unit tests for :mod:`repro.commmodel.message`.

The message/packet layer was previously covered only through the
switching engines; the fault-injection work added per-message state
(``corrupted``, ``internal``) that deserves first-class coverage.
"""

from __future__ import annotations

import pytest

from repro.commmodel.message import Message, Packet, reset_message_ids


class TestMessageIds:
    def test_ids_are_sequential_and_resettable(self):
        reset_message_ids()
        a = Message(0, 1, 10, synchronous=True)
        b = Message(1, 0, 10, synchronous=False)
        assert (a.id, b.id) == (0, 1)
        reset_message_ids()
        assert Message(0, 1, 10, synchronous=True).id == 0


class TestMessageState:
    def test_initial_state(self):
        msg = Message(2, 5, 64, synchronous=True, payload={"k": 1})
        assert (msg.src, msg.dst, msg.size) == (2, 5, 64)
        assert msg.synchronous
        assert msg.payload == {"k": 1}
        assert msg.on_deliver is None
        assert not msg.delivered
        # Fault-injection state starts clean on every message.
        assert msg.corrupted is False
        assert msg.internal is False

    def test_latency_requires_delivery(self):
        msg = Message(0, 1, 8, synchronous=False)
        with pytest.raises(ValueError, match="not yet delivered"):
            _ = msg.latency
        msg.t_inject = 10.0
        msg.t_deliver = 35.5
        assert msg.delivered
        assert msg.latency == 25.5


class TestSplit:
    def test_split_into_packets(self):
        msg = Message(0, 1, 100, synchronous=False)
        packets = msg.split(max_payload=32, header_bytes=4)
        assert [p.payload_bytes for p in packets] == [32, 32, 32, 4]
        assert [p.index for p in packets] == [0, 1, 2, 3]
        assert all(p.header_bytes == 4 for p in packets)
        assert all(p.total_bytes == p.payload_bytes + 4 for p in packets)
        assert msg.n_packets == 4
        # Packets delegate src/dst to their message.
        assert all((p.src, p.dst) == (0, 1) for p in packets)

    def test_zero_byte_message_sends_header_only_packet(self):
        msg = Message(0, 1, 0, synchronous=True)
        packets = msg.split(max_payload=32, header_bytes=6)
        assert len(packets) == 1
        assert packets[0].payload_bytes == 0
        assert packets[0].total_bytes == 6

    def test_exact_multiple_has_no_runt_packet(self):
        msg = Message(0, 1, 64, synchronous=False)
        assert [p.payload_bytes
                for p in msg.split(32, 4)] == [32, 32]


class TestPacketArrival:
    def test_arrivals_complete_once(self):
        msg = Message(0, 1, 64, synchronous=False)
        msg.split(32, 4)
        assert msg.packet_arrived() is False
        assert msg.packet_arrived() is True
        with pytest.raises(ValueError, match="too many packet arrivals"):
            msg.packet_arrived()

    def test_repr_mentions_direction_and_mode(self):
        reset_message_ids()
        msg = Message(3, 7, 128, synchronous=True)
        assert "3->7" in repr(msg) and "sync" in repr(msg)
        pkt = Packet(msg, 0, 16, 4)
        assert "0.0" in repr(pkt) and "3->7" in repr(pkt)
