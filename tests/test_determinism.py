"""Determinism harness: golden snapshots + cross-process reproducibility.

The Pearl kernel breaks simultaneous-event ties with a global monotone
sequence number, so every simulation is a pure function of (machine,
workload, code) — the property the parallel sweep subsystem and its
result cache rest on.  This suite pins it down three ways:

* **golden snapshots** — representative workloads must keep producing
  the exact committed metric values (``tests/golden/*.json``).
  Regenerate deliberately with ``REPRO_REGEN_GOLDEN=1`` after a
  semantics-changing simulator change;
* **run-to-run** — two runs in one process are identical;
* **cross-process** — values computed in freshly forked worker
  processes are identical to in-process values (what makes parallel
  sweep rows byte-identical to serial ones).
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro import Workbench, generic_multicomputer, t805_grid
from repro.parallel.runner import _mp_context
from repro.tracegen import StochasticAppDescription, StochasticGenerator

GOLDEN_DIR = Path(__file__).parent / "golden"


def check_golden(name: str, value: dict) -> None:
    path = GOLDEN_DIR / f"{name}.json"
    if os.environ.get("REPRO_REGEN_GOLDEN") or not path.exists():
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(value, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"golden snapshot {name} (re)generated")
    golden = json.loads(path.read_text())
    assert value == golden, (
        f"{name}: metrics diverged from the golden snapshot; if the "
        f"simulator's semantics changed on purpose, regenerate with "
        f"REPRO_REGEN_GOLDEN=1")


# ---------------------------------------------------------------------------
# Workloads (module level: they also run inside forked workers)
# ---------------------------------------------------------------------------

def stochastic_task_metrics() -> dict:
    """Fixed-seed stochastic traces, task level, on the T805 grid."""
    wb = Workbench(t805_grid(2, 2))
    res = wb.run_stochastic(StochasticAppDescription(), level="task",
                            rounds=5, seed=42)
    return {"total_cycles": res.total_cycles,
            "mean_latency": res.message_latency.mean,
            "max_latency": res.message_latency.max}


def mixed_trace_metrics() -> dict:
    """A small ``run_mixed_traces`` workload on the generic mesh."""
    machine = generic_multicomputer("mesh", (2, 2))
    traces = StochasticGenerator(
        StochasticAppDescription(), machine.n_nodes,
        seed=11).generate_instruction_level(3_000)
    res = Workbench(machine).run_mixed_traces(traces)
    return {"total_cycles": res.total_cycles,
            "comm_cycles": res.comm.total_cycles}


def single_node_metrics() -> dict:
    """Fixed-seed instruction trace through one node template."""
    machine = generic_multicomputer("mesh", (2, 2))
    trace = StochasticGenerator(
        StochasticAppDescription(), 1,
        seed=5).generate_instruction_level(5_000)[0]
    res = Workbench(machine).run_single_node(trace)
    return {"cycles": res.cycles, "cpi": res.cpi}


WORKLOADS = {
    "stochastic_task_t805_2x2": stochastic_task_metrics,
    "mixed_traces_mesh_2x2": mixed_trace_metrics,
    "single_node_generic": single_node_metrics,
}


def compute_workload(name: str) -> dict:
    return WORKLOADS[name]()


# ---------------------------------------------------------------------------
# Golden snapshots
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_golden_snapshot(name):
    check_golden(name, compute_workload(name))


# ---------------------------------------------------------------------------
# Run-to-run and cross-process identity
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_two_runs_identical(name):
    first = compute_workload(name)
    second = compute_workload(name)
    assert json.dumps(first, sort_keys=True) == \
        json.dumps(second, sort_keys=True)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_identical_across_process_boundary(name):
    in_process = compute_workload(name)
    with ProcessPoolExecutor(max_workers=2,
                             mp_context=_mp_context()) as pool:
        child_a = pool.submit(compute_workload, name)
        child_b = pool.submit(compute_workload, name)
        assert child_a.result() == in_process
        assert child_b.result() == in_process
