"""Resource semantics: FIFO arbitration, utilization accounting."""

from __future__ import annotations

import pytest

from repro.pearl import Resource, SimulationError


class TestAcquireRelease:
    def test_exclusive_serialization(self, sim):
        res = Resource(sim, capacity=1, name="bus")
        log = []

        def user(tag):
            yield res.acquire()
            log.append((tag, "got", sim.now))
            yield 10.0
            res.release()

        sim.process(user("a"))
        sim.process(user("b"))
        sim.process(user("c"))
        sim.run()
        assert log == [("a", "got", 0.0), ("b", "got", 10.0),
                       ("c", "got", 20.0)]

    def test_fifo_grant_order(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def user(tag, start):
            yield start
            yield res.acquire()
            order.append(tag)
            yield 5.0
            res.release()

        sim.process(user("late", 2.0))
        sim.process(user("early", 1.0))
        sim.process(user("earliest", 0.5))
        sim.run()
        assert order == ["earliest", "early", "late"]

    def test_multi_capacity(self, sim):
        res = Resource(sim, capacity=2)
        concurrent = []

        def user():
            yield res.acquire()
            concurrent.append(res.in_use)
            yield 5.0
            res.release()

        for _ in range(4):
            sim.process(user())
        sim.run()
        assert max(concurrent) == 2

    def test_acquire_units(self, sim):
        res = Resource(sim, capacity=4)
        log = []

        def big():
            yield res.acquire(3)
            log.append(("big", sim.now))
            yield 10.0
            res.release(3)

        def small():
            yield 1.0
            yield res.acquire(2)
            log.append(("small", sim.now))
            res.release(2)

        sim.process(big())
        sim.process(small())
        sim.run()
        assert log == [("big", 0.0), ("small", 10.0)]

    def test_fifo_head_blocks_queue(self, sim):
        """Strict FIFO: a large waiting request blocks later small ones."""
        res = Resource(sim, capacity=2)
        order = []

        def holder():
            yield res.acquire(2)
            yield 10.0
            res.release(2)

        def big():
            yield 1.0
            yield res.acquire(2)
            order.append(("big", sim.now))
            yield 5.0
            res.release(2)

        def small():
            yield 2.0
            yield res.acquire(1)
            order.append(("small", sim.now))
            res.release(1)

        sim.process(holder())
        sim.process(big())
        sim.process(small())
        sim.run()
        assert order == [("big", 10.0), ("small", 15.0)]

    def test_use_helper(self, sim):
        res = Resource(sim, capacity=1)

        def user():
            yield from res.use(7.0)
            return sim.now
        p = sim.process(user())
        sim.run()
        assert p.result == 7.0
        assert res.in_use == 0


class TestErrors:
    def test_bad_capacity(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_over_acquire(self, sim):
        res = Resource(sim, capacity=2)
        with pytest.raises(SimulationError):
            res.acquire(3)

    def test_over_release(self, sim):
        res = Resource(sim, capacity=2)
        with pytest.raises(SimulationError):
            res.release(1)


class TestAccounting:
    def test_utilization_full(self, sim):
        res = Resource(sim, capacity=1)

        def user():
            yield from res.use(10.0)
        sim.process(user())
        sim.run()
        assert res.utilization(horizon=10.0) == pytest.approx(1.0)

    def test_utilization_half(self, sim):
        res = Resource(sim, capacity=2)

        def user():
            yield from res.use(10.0)
        sim.process(user())
        sim.run()
        assert res.utilization(horizon=10.0) == pytest.approx(0.5)

    def test_wait_time_and_queue_stats(self, sim):
        res = Resource(sim, capacity=1)

        def user():
            yield from res.use(4.0)

        for _ in range(3):
            sim.process(user())
        sim.run()
        assert res.acquisitions == 3
        assert res.max_queue_len == 2
        assert res.total_wait_time == pytest.approx(4.0 + 8.0)


class TestKillSafety:
    """``use()``/``using()`` must never leak capacity when the holder
    is ``kill()``ed — mid-hold or while still queued for the grant."""

    def test_kill_mid_hold_releases_capacity(self, sim):
        res = Resource(sim, capacity=1, name="bus")
        log = []

        def victim():
            yield from res.use(100.0)

        def successor():
            yield 10.0
            yield res.acquire()
            log.append(("got", sim.now))
            res.release()

        proc = sim.process(victim())
        sim.process(successor())

        def killer():
            yield 5.0
            proc.kill()

        sim.process(killer())
        sim.run()
        assert res.in_use == 0
        # The successor gets the capacity the victim abandoned.
        assert log == [("got", 10.0)]

    def test_kill_while_queued_cancels_request(self, sim):
        res = Resource(sim, capacity=1, name="bus")
        log = []

        def holder():
            yield from res.use(20.0)
            log.append(("holder-done", sim.now))

        def queued_victim():
            yield 1.0
            yield from res.use(50.0)        # never gets the grant

        def late_user():
            yield 2.0
            yield from res.use(5.0)
            log.append(("late-done", sim.now))

        sim.process(holder())
        victim = sim.process(queued_victim())
        sim.process(late_user())

        def killer():
            yield 10.0
            victim.kill()

        sim.process(killer())
        sim.run()
        # The dead request must not absorb the grant at t=20: the late
        # user acquires immediately when the holder releases.
        assert log == [("holder-done", 20.0), ("late-done", 25.0)]
        assert res.in_use == 0 and res.queue_length == 0

    def test_cancel_unblocks_smaller_request_behind_head(self, sim):
        res = Resource(sim, capacity=4, name="banked")
        log = []

        def holder():
            yield res.acquire(3)
            yield 10.0
            res.release(3)

        def big():
            yield 1.0
            # Needs more than the free unit: parks at the queue head.
            yield from res.use(5.0, units=4)
            log.append(("big", sim.now))

        def small():
            yield 2.0
            yield res.acquire(1)
            log.append(("small", sim.now))
            res.release(1)

        sim.process(holder())
        big_proc = sim.process(big())
        sim.process(small())

        def killer():
            yield 3.0
            big_proc.kill()

        sim.process(killer())
        sim.run()
        # Cancelling the blocking head request re-runs FIFO granting,
        # so the small request proceeds at once (t=3), not at t=10.
        assert log == [("small", 3.0)]
        assert res.in_use == 0

    def test_cancel_of_granted_event_is_refused(self, sim):
        res = Resource(sim, capacity=1)
        results = []

        def user():
            grant = res.acquire()
            yield grant
            results.append(res.cancel(grant))   # already granted: False
            res.release()

        sim.process(user())
        sim.run()
        assert results == [False]
        assert res.in_use == 0

    def test_using_alias_is_use(self):
        assert Resource.using is Resource.use
