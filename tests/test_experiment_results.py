"""Design-space sweeps and persistable experiment records."""

from __future__ import annotations

import pytest

from repro import Sweep, Workbench, generic_multicomputer, vary_machine
from repro.core.config import ConfigError
from repro.core.results import ExperimentRecord


class TestVaryMachine:
    def test_base_untouched(self):
        base = generic_multicomputer("mesh", (2, 2))
        original_bw = base.network.link_bandwidth
        variants = vary_machine(
            base, lambda m, v: setattr(m.network, "link_bandwidth", v),
            [1.0, 2.0, 3.0])
        assert base.network.link_bandwidth == original_bw
        assert [m.network.link_bandwidth for m in variants] == [1.0, 2.0, 3.0]

    def test_invalid_variant_rejected(self):
        base = generic_multicomputer("mesh", (2, 2))
        with pytest.raises(ConfigError):
            vary_machine(base,
                         lambda m, v: setattr(m.network, "link_bandwidth", v),
                         [-1.0])


class TestSweep:
    def test_single_axis(self):
        sweep = Sweep(generic_multicomputer("mesh", (2, 2)))
        sweep.axis("bw", lambda m, v: setattr(m.network, "link_bandwidth",
                                              v), [1.0, 4.0])
        rows = sweep.run(lambda m: {"bw_out": m.network.link_bandwidth})
        assert rows == [{"bw": 1.0, "bw_out": 1.0},
                        {"bw": 4.0, "bw_out": 4.0}]

    def test_cross_product(self):
        sweep = (Sweep(generic_multicomputer("mesh", (2, 2)))
                 .axis("a", lambda m, v: None, [1, 2, 3])
                 .axis("b", lambda m, v: None, ["x", "y"]))
        rows = sweep.run(lambda m: {})
        assert len(rows) == 6
        assert {(r["a"], r["b"]) for r in rows} == {
            (a, b) for a in (1, 2, 3) for b in ("x", "y")}

    def test_points_are_independent_copies(self):
        sweep = Sweep(generic_multicomputer("mesh", (2, 2)))
        sweep.axis("bw", lambda m, v: setattr(m.network, "link_bandwidth",
                                              v), [1.0, 2.0])
        points = sweep.points()
        assert points[0][1] is not points[1][1]
        assert points[0][1].network.link_bandwidth == 1.0

    def test_empty_axis_rejected(self):
        sweep = Sweep(generic_multicomputer("mesh", (2, 2)))
        with pytest.raises(ValueError):
            sweep.axis("empty", lambda m, v: None, [])

    def test_real_metric_sweep(self):
        sweep = Sweep(generic_multicomputer("mesh", (2, 2)))
        sweep.axis("mul_cost",
                   lambda m, v: m.node.cpu.mul_cycles.update(
                       {k: float(v) for k in m.node.cpu.mul_cycles}),
                   [1, 10])
        from repro.operations import mul
        rows = sweep.run(lambda m: {
            "cycles": Workbench(m).run_single_node([mul()] * 100).cycles})
        assert rows[1]["cycles"] == pytest.approx(10 * rows[0]["cycles"])


class TestExperimentRecord:
    def test_round_trip(self, tmp_path):
        machine = generic_multicomputer("mesh", (2, 2))
        record = ExperimentRecord("X1", "a test experiment", machine,
                                  parameters={"alpha": 1})
        record.add_row(metric=3.5, label="run-a")
        record.add_rows([{"metric": 4.5, "label": "run-b"}])
        path = str(tmp_path / "x1.json")
        record.save(path)
        loaded = ExperimentRecord.load(path)
        assert loaded.experiment_id == "X1"
        assert loaded.parameters == {"alpha": 1}
        assert loaded.rows == [{"metric": 3.5, "label": "run-a"},
                               {"metric": 4.5, "label": "run-b"}]
        assert loaded.machine.n_nodes == 4

    def test_machineless_record(self, tmp_path):
        record = ExperimentRecord("X2", "no machine attached")
        record.add_row(v=1)
        path = str(tmp_path / "x2.json")
        record.save(path)
        loaded = ExperimentRecord.load(path)
        assert loaded.machine is None
        assert loaded.rows == [{"v": 1}]
