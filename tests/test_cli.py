"""The ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import PRESETS, build_machine, main
from repro.tracegen import StochasticAppDescription, StochasticGenerator


class TestBuildMachine:
    def test_all_presets_valid(self):
        for name in PRESETS:
            machine = build_machine(name)
            assert machine.n_nodes >= 2

    def test_unknown_preset(self):
        with pytest.raises(SystemExit, match="unknown preset"):
            build_machine("cray-ymp")

    def test_override_float(self):
        m = build_machine("generic-mesh", ["network.link_bandwidth=8"])
        assert m.network.link_bandwidth == 8.0

    def test_override_int_and_str(self):
        m = build_machine("generic-mesh",
                          ["network.packet_bytes=512",
                           "network.switching=store_and_forward"])
        assert m.network.packet_bytes == 512
        assert m.network.switching == "store_and_forward"

    def test_override_tuple(self):
        m = build_machine("generic-mesh", ["network.topology.dims=2,2"])
        assert m.n_nodes == 4

    def test_override_nested_node(self):
        m = build_machine("smp4", ["node.coherence=msi"])
        assert m.node.coherence == "msi"

    def test_bad_override_path(self):
        with pytest.raises(SystemExit, match="unknown config path"):
            build_machine("generic-mesh", ["network.warp_speed=9"])

    def test_bad_override_syntax(self):
        with pytest.raises(SystemExit, match="key=value"):
            build_machine("generic-mesh", ["no-equals-sign"])

    def test_invalid_override_rejected_by_validation(self):
        with pytest.raises(Exception):
            build_machine("generic-mesh", ["network.link_bandwidth=-1"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "t805-grid" in out and "powerpc601" in out

    def test_calibrate(self, capsys):
        assert main(["calibrate", "generic-mesh",
                     "--set", "network.topology.dims=2,2"]) == 0
        out = capsys.readouterr().out
        assert "l1_hit_cycles" in out

    def test_slowdown(self, capsys):
        assert main(["slowdown", "t805-grid-2x2", "--ops", "3000"]) == 0
        out = capsys.readouterr().out
        assert "detailed" in out and "task level" in out

    def test_slowdown_smp_preset_skips_detailed(self, capsys):
        assert main(["slowdown", "smp4", "--ops", "2000"]) == 0
        out = capsys.readouterr().out
        assert "detailed" not in out

    def test_stochastic(self, capsys):
        assert main(["stochastic", "generic-mesh", "--rounds", "3",
                     "--set", "network.topology.dims=2,2"]) == 0
        out = capsys.readouterr().out
        assert "parallel efficiency" in out

    def test_trace_profile_and_dump(self, capsys, tmp_path):
        gen = StochasticGenerator(StochasticAppDescription(), 2, seed=0)
        ts = gen.generate_task_level(3)
        path = str(tmp_path / "t.npz")
        ts.save(path)
        assert main(["trace", path, "--dump", "3"]) == 0
        out = capsys.readouterr().out
        assert "trace profile" in out
        assert "compute" in out

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestTraceAppCommand:
    def test_trace_app_exports_valid_chrome_json(self, capsys, tmp_path):
        import json

        from repro.observe import validate_chrome_trace

        out_path = str(tmp_path / "trace.json")
        assert main(["trace", "pingpong", "--out", out_path]) == 0
        out = capsys.readouterr().out
        assert "traced pingpong" in out
        assert "records by category" in out
        with open(out_path) as fh:
            doc = json.load(fh)
        counts = validate_chrome_trace(doc)
        assert counts.get("X", 0) > 0      # spans
        assert counts.get("i", 0) > 0      # instants

    def test_trace_app_examples_path_spelling(self, capsys, tmp_path):
        out_path = str(tmp_path / "t.json")
        assert main(["trace", "examples/pingpong.py",
                     "--out", out_path]) == 0
        assert "traced pingpong" in capsys.readouterr().out

    def test_trace_app_ring_buffer(self, capsys, tmp_path):
        out_path = str(tmp_path / "t.json")
        assert main(["trace", "alltoall", "--out", out_path,
                     "--ring", "50"]) == 0
        out = capsys.readouterr().out
        assert "dropped by the ring buffer" in out
        assert "(0 dropped" not in out     # alltoall overflows 50 records

    def test_trace_unknown_npz_path_fails(self):
        with pytest.raises(Exception):
            main(["trace", "no-such-app-or-file.npz"])


class TestStatsCommand:
    def test_stats_table(self, capsys):
        assert main(["stats", "pingpong"]) == 0
        out = capsys.readouterr().out
        assert "metric sources" in out
        assert "network.message_latency.count" in out
        assert "node0.nic.messages_sent" in out

    def test_stats_default_app(self, capsys):
        assert main(["stats"]) == 0
        assert "pingpong" in capsys.readouterr().out

    def test_stats_json(self, capsys):
        import json
        assert main(["stats", "pipeline", "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["network.traffic.messages_delivered"] > 0

    def test_stats_unknown_app(self):
        with pytest.raises(SystemExit, match="unknown app"):
            main(["stats", "mandelbrot"])


class TestWorkloadClassOption:
    def test_stochastic_with_workload_preset(self, capsys):
        assert main(["stochastic", "generic-mesh", "--rounds", "3",
                     "--workload", "stencil",
                     "--set", "network.topology.dims=2,2"]) == 0
        out = capsys.readouterr().out
        assert "parallel efficiency" in out


class TestSweepCommand:
    def test_serial_sweep(self, capsys):
        assert main(["sweep", "t805-grid-2x2", "--rounds", "2",
                     "--axis", "network.link_bandwidth=2,4"]) == 0
        out = capsys.readouterr().out
        assert "network.link_bandwidth" in out
        assert "total_cycles" in out

    def test_parallel_cached_rerun_hits(self, capsys, tmp_path):
        argv = ["sweep", "t805-grid-2x2", "--rounds", "2",
                "--axis", "network.link_bandwidth=2,4",
                "--workers", "2", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "2 misses" in first and "2 stored" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "2 hits, 0 misses" in second
        # Identical metric rows from cache (strip the stats line).
        assert first.splitlines()[:-1] == second.splitlines()[:-1]

    def test_cross_product_axes(self, capsys):
        assert main(["sweep", "t805-grid-2x2", "--rounds", "2",
                     "--axis", "network.link_bandwidth=2,4",
                     "--axis", "network.send_overhead=50,100"]) == 0
        out = capsys.readouterr().out
        assert "4 variants" in out

    def test_bad_axis_path(self):
        with pytest.raises(SystemExit, match="unknown config path"):
            main(["sweep", "t805-grid-2x2",
                  "--axis", "network.warp_factor=1,2"])

    def test_axis_requires_values(self):
        with pytest.raises(SystemExit):
            main(["sweep", "t805-grid-2x2", "--axis", "no-equals"])

    def test_rows_include_event_counts(self, capsys):
        assert main(["sweep", "t805-grid-2x2", "--rounds", "2",
                     "--axis", "network.link_bandwidth=2,4"]) == 0
        assert "events" in capsys.readouterr().out

    def test_timing_and_progress(self, capsys):
        assert main(["sweep", "t805-grid-2x2", "--rounds", "2",
                     "--axis", "network.link_bandwidth=2,4",
                     "--timing", "--progress"]) == 0
        captured = capsys.readouterr()
        assert "wall_time_s" in captured.out
        assert "[1/2]" in captured.err and "[2/2]" in captured.err


class TestCheckExitCodes:
    """Exit codes and JSON schema of `repro check` (clean vs error)."""

    def test_clean_preset_exits_zero(self, capsys):
        assert main(["check", "--preset", "t805-grid-2x2"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_clean_json_schema(self, capsys):
        import json
        assert main(["check", "--preset", "t805-grid-2x2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["n_errors"] == 0
        assert isinstance(payload["n_warnings"], int)
        assert isinstance(payload["rule_families"], dict)
        for counts in payload["rule_families"].values():
            assert set(counts) == {"errors", "warnings", "notes"}
        for report in payload["reports"]:
            assert set(report) >= {"subject", "ok", "n_errors",
                                   "n_warnings", "diagnostics"}
            for diag in report["diagnostics"]:
                assert set(diag) >= {"rule", "severity", "message",
                                     "subject"}

    def test_code_errors_exit_one(self, capsys):
        path = "tests/fixtures/broken_model.py"
        assert main(["check", "--preset", "t805-grid-2x2",
                     "--code", path]) == 1
        out = capsys.readouterr().out
        assert "error" in out

    def test_rules_table_lists_verify_rules(self, capsys):
        assert main(["check", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("KV001", "KV002", "KV003", "KV004"):
            assert rule in out


class TestLintExitCodes:
    """Exit codes and JSON schema of `repro lint` across gate states."""

    CLEAN = '"""Clean model: nothing to flag."""\n\nX = 1\n'
    WARN_ONLY = (
        '"""PY020 only: returned value nobody can observe."""\n\n\n'
        'def worker(sim):\n'
        '    yield 1.0\n'
        '    return 42\n\n\n'
        'def drive(sim):\n'
        '    sim.process(worker(sim))\n')

    def test_clean_file_exits_zero(self, capsys, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text(self.CLEAN)
        assert main(["lint", str(path)]) == 0
        assert "0 error(s) (0 new)" in capsys.readouterr().out

    def test_warning_only_exits_zero(self, capsys, tmp_path):
        import json
        path = tmp_path / "warn.py"
        path.write_text(self.WARN_ONLY)
        assert main(["lint", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["n_errors"] == 0
        assert payload["n_warnings"] >= 1
        assert payload["rule_families"]["PY"]["warnings"] >= 1
        assert payload["rule_families"]["PY"]["errors"] == 0
        rules = [d["rule"] for r in payload["reports"]
                 for d in r["diagnostics"]]
        assert "PY020" in rules

    def test_errors_exit_one_with_schema(self, capsys):
        import json
        assert main(["lint", "tests/fixtures/broken_model.py",
                     "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["n_errors"] >= 1
        assert payload["n_new"] >= 1
        assert payload["n_stale"] == 0
        assert sum(c["errors"]
                   for c in payload["rule_families"].values()) >= 1

    def test_baselined_errors_exit_zero(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        assert main(["lint", "tests/fixtures/broken_model.py",
                     "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        capsys.readouterr()
        assert main(["lint", "tests/fixtures/broken_model.py",
                     "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "(0 new)" in out
        assert "stale" not in out

    def test_stale_baseline_warns(self, capsys, tmp_path):
        import json
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "format": "repro-lint-baseline/v1",
            "findings": {"deadbeefdeadbeefdead": "PY001 gone.py"}}))
        clean = tmp_path / "clean.py"
        clean.write_text(self.CLEAN)
        assert main(["lint", str(clean), "--baseline",
                     str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 stale baseline entry(ies)" in out
        assert "PY001 gone.py" in out
        assert main(["lint", str(clean), "--baseline", str(baseline),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_stale"] == 1


class TestVerifyCommand:
    def test_verify_pingpong_schedule_independent(self, capsys):
        assert main(["verify", "pingpong", "--budget", "16"]) == 0
        out = capsys.readouterr().out
        assert "schedule-independent" in out
        assert "certificate" in out

    def test_verify_json_schema(self, capsys):
        import json
        assert main(["verify", "masterworker", "--budget", "8",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "rule_families" in payload
        verify = payload["verify"]
        assert verify["ok"] is True
        assert verify["mode"] == "dpor"
        assert verify["schedules_explored"] >= 1
        assert len(verify["certificate"]) == 64
        assert isinstance(verify["clusters"], list)
        (report,) = payload["reports"]
        assert report["subject"].startswith("verify:masterworker:")

    def test_verify_unknown_app(self):
        with pytest.raises(SystemExit, match="unknown app"):
            main(["verify", "mandelbrot"])

    def test_verify_naive_mode_runs(self, capsys):
        assert main(["verify", "pingpong", "--budget", "8",
                     "--naive"]) == 0
        assert "(naive)" in capsys.readouterr().out


class TestBoundCommand:
    """Exit codes and JSON schema of `repro bound` (app/npz/audit)."""

    def test_bundled_app_text_output(self, capsys):
        assert main(["bound", "pingpong"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "cycle lower bound" in out
        assert "hot links" in out

    def test_json_schema(self, capsys):
        import json
        assert main(["bound", "alltoall", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["n_errors"] == 0
        assert "rule_families" in payload
        bound = payload["bound"]
        assert bound["cycle_lower_bound"] > 0
        assert bound["critical_path_cycles"] > 0
        assert bound["routing_exact"] is True
        assert bound["converged"] is True
        assert bound["n_links_loaded"] >= 1
        assert bound["hot_links"]
        assert bound["message_classes"]

    def test_overloaded_npz_exits_one(self, capsys, tmp_path):
        import json
        from repro.operations.ops import arecv, asend
        from repro.operations.trace import Trace, TraceSet
        lists = [[arecv(s) for s in (1, 2, 3) for _ in range(4)],
                 [asend(8192, 0) for _ in range(4)],
                 [asend(8192, 0) for _ in range(4)],
                 [asend(8192, 0) for _ in range(4)]]
        path = tmp_path / "funnel.npz"
        TraceSet([Trace(i, ops)
                  for i, ops in enumerate(lists)]).save(str(path))
        argv = ["bound", str(path), "--preset", "generic-mesh",
                "--set", "network.topology.dims=4,1"]
        assert main(argv) == 1
        assert "PB002" in capsys.readouterr().out
        assert main(argv + ["--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["rule_families"]["PB"]["errors"] >= 1

    def test_audit_warm_cache(self, capsys, tmp_path):
        import json
        cache_dir = str(tmp_path)
        assert main(["sweep", "t805-grid-2x2", "--rounds", "2",
                     "--axis", "network.link_bandwidth=2,4",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["bound", "--audit", cache_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["audit"]["checked"] == 2
        assert payload["audit"]["skipped"] == 0
        one = json.dumps(payload, sort_keys=True)
        assert main(["bound", "--audit", cache_dir, "--json",
                     "--workers", "3"]) == 0
        three = json.dumps(json.loads(capsys.readouterr().out),
                           sort_keys=True)
        assert one == three

    def test_audit_rejects_positional_target(self, tmp_path):
        with pytest.raises(SystemExit, match="drop the"):
            main(["bound", "pingpong", "--audit", str(tmp_path)])

    def test_audit_missing_dir(self, tmp_path):
        with pytest.raises(SystemExit, match="no cache directory"):
            main(["bound", "--audit", str(tmp_path / "nowhere")])

    def test_requires_target_or_audit(self):
        with pytest.raises(SystemExit, match="bundled app name"):
            main(["bound"])

    def test_bad_worker_count(self, tmp_path):
        with pytest.raises(SystemExit, match="workers"):
            main(["bound", "--audit", str(tmp_path), "--workers", "0"])

    def test_rules_table_lists_pb_rules(self, capsys):
        assert main(["check", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("PB001", "PB002", "PB003"):
            assert rule in out

    def test_check_bundle_covers_bounds(self, capsys):
        import json
        assert main(["check", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        subjects = [r["subject"] for r in payload["reports"]]
        for app in ("pingpong", "alltoall", "pipeline"):
            assert f"bounds:{app}:t805-grid-2x2" in subjects
