"""Routing functions: dimension order and shortest path."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.commmodel import (
    DimensionOrderRouting,
    ShortestPathRouting,
    make_routing,
)
from repro.core.config import ConfigError
from repro.topology import full, hypercube, mesh, ring, star, torus, tree


def assert_valid_path(topo, path, src, dst):
    assert path[0] == src and path[-1] == dst
    for u, v in zip(path, path[1:]):
        assert v in topo.neighbors(u), f"{u}->{v} not a link"


class TestDimensionOrder:
    def test_mesh_xy_route(self):
        topo = mesh(4, 4)
        r = DimensionOrderRouting(topo)
        # node 0 = (0,0), node 15 = (3,3): x first then y (axis order).
        path = r.path(0, 15)
        coords = [topo.coords[n] for n in path]
        assert coords == [(0, 0), (1, 0), (2, 0), (3, 0),
                          (3, 1), (3, 2), (3, 3)]

    def test_mesh_routes_minimal(self):
        topo = mesh(4, 4)
        r = DimensionOrderRouting(topo)
        for src in range(16):
            d = topo.shortest_path_lengths(src)
            for dst in range(16):
                if src != dst:
                    assert r.hops(src, dst) == d[dst]

    def test_torus_takes_short_way_around(self):
        topo = torus(8, 2)
        r = DimensionOrderRouting(topo)
        # In an 8-wide torus, 0 -> coordinate 6 should wrap (2 hops).
        # node ids: coords (x, y) with y extent 2; (6,0) is node 12.
        assert r.hops(0, 12) == 2

    def test_hypercube_fixes_bits_lsb_first(self):
        topo = hypercube(3)
        r = DimensionOrderRouting(topo)
        assert r.path(0b000, 0b101) == [0b000, 0b001, 0b101]

    def test_hypercube_minimal(self):
        topo = hypercube(4)
        r = DimensionOrderRouting(topo)
        for src in (0, 5, 15):
            for dst in range(16):
                if src != dst:
                    assert r.hops(src, dst) == bin(src ^ dst).count("1")

    def test_ring_choses_shorter_direction(self):
        topo = ring(8)
        r = DimensionOrderRouting(topo)
        assert r.path(0, 2) == [0, 1, 2]
        assert r.path(0, 6) == [0, 7, 6]

    def test_rejects_irregular_topology(self):
        with pytest.raises(ConfigError):
            DimensionOrderRouting(star(4))

    def test_paths_are_cached(self):
        r = DimensionOrderRouting(mesh(3, 3))
        assert r.path(0, 8) is r.path(0, 8)


class TestShortestPath:
    @pytest.mark.parametrize("topo_factory", [
        lambda: mesh(3, 3), lambda: torus(4, 4), lambda: star(6),
        lambda: tree(2, 3), lambda: full(5), lambda: ring(7),
        lambda: hypercube(3)])
    def test_minimal_and_valid_everywhere(self, topo_factory):
        topo = topo_factory()
        r = ShortestPathRouting(topo)
        for src in range(topo.n):
            dists = topo.shortest_path_lengths(src)
            for dst in range(topo.n):
                if src == dst:
                    assert r.path(src, dst) == [src]
                    continue
                path = r.path(src, dst)
                assert_valid_path(topo, path, src, dst)
                assert len(path) - 1 == dists[dst]

    def test_hop_by_hop_consistency(self):
        """A packet rerouted mid-path must follow the same route."""
        topo = torus(4, 4)
        r = ShortestPathRouting(topo)
        for src in range(topo.n):
            for dst in range(topo.n):
                if src == dst:
                    continue
                path = r.path(src, dst)
                # Path from any intermediate node equals the tail.
                mid = path[len(path) // 2]
                assert r.path(mid, dst) == path[path.index(mid):]


class TestMakeRouting:
    def test_dimension_order_on_regular(self):
        assert isinstance(make_routing("dimension_order", mesh(2, 2)),
                          DimensionOrderRouting)

    def test_dimension_order_falls_back_on_irregular(self):
        assert isinstance(make_routing("dimension_order", star(4)),
                          ShortestPathRouting)

    def test_shortest_path(self):
        assert isinstance(make_routing("shortest_path", mesh(2, 2)),
                          ShortestPathRouting)

    def test_unknown(self):
        with pytest.raises(ConfigError):
            make_routing("valiant", mesh(2, 2))


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 4), st.integers(2, 4),
       st.data())
def test_dimension_order_valid_paths_property(rows, cols, data):
    topo = mesh(rows, cols)
    r = DimensionOrderRouting(topo)
    src = data.draw(st.integers(0, topo.n - 1))
    dst = data.draw(st.integers(0, topo.n - 1))
    if src != dst:
        assert_valid_path(topo, r.path(src, dst), src, dst)


class TestIrregularFallbackPaths:
    """The dimension-order -> shortest-path fallback must route every
    pair on irregular topologies (the ``repro.faults`` degraded-routing
    machinery leans on the same BFS)."""

    @pytest.mark.parametrize("topo", [star(5), tree(2, 2)])
    def test_all_pairs_routable(self, topo):
        routing = make_routing("dimension_order", topo)
        for src in range(topo.n):
            for dst in range(topo.n):
                if src == dst:
                    continue
                assert_valid_path(topo, routing.path(src, dst), src, dst)

    def test_fallback_paths_are_shortest(self):
        topo = star(6)
        routing = make_routing("dimension_order", topo)
        # Leaf to leaf is always exactly two hops through the hub.
        assert routing.path(1, 5) == [1, 0, 5]
