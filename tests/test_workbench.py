"""The Workbench facade: every simulation mode through one entry point."""

from __future__ import annotations

import pytest

from repro import Workbench, generic_multicomputer, smp_node
from repro.apps import make_matmul, make_pingpong
from repro.commmodel import CommResult
from repro.compmodel import NodeResult
from repro.hybrid import HybridResult
from repro.operations import (
    MemType,
    add,
    compute,
    ifetch,
    load,
    recv,
    send,
    validate_trace_set,
)
from repro.sharedmem import SMPResult
from repro.tracegen import StochasticAppDescription


@pytest.fixture(scope="module")
def wb() -> Workbench:
    return Workbench(generic_multicomputer("mesh", (2, 2)))


class TestModes:
    def test_run_hybrid_with_callable(self, wb):
        res = wb.run_hybrid(make_pingpong(size=1024, repeats=2))
        assert isinstance(res, HybridResult)
        assert res.comm.messages_delivered == 4

    def test_run_mixed_traces(self, wb):
        traces = wb.record_traces(make_matmul(n=8))
        res = wb.run_mixed_traces(traces, validate=True)
        assert isinstance(res, HybridResult)
        assert res.total_instructions > 0

    def test_run_comm_only(self, wb):
        traces = [
            [compute(100), send(256, 1)],
            [recv(0)],
            [compute(50)],
            [],
        ]
        res = wb.run_comm_only(traces)
        assert isinstance(res, CommResult)
        assert res.messages_delivered == 1

    def test_run_stochastic_task(self, wb):
        res = wb.run_stochastic(StochasticAppDescription(), level="task",
                                rounds=10)
        assert isinstance(res, CommResult)
        assert res.total_cycles > 0

    def test_run_stochastic_instruction(self, wb):
        res = wb.run_stochastic(StochasticAppDescription(),
                                level="instruction", ops_per_node=3000)
        assert isinstance(res, HybridResult)
        assert res.total_instructions > 0

    def test_run_stochastic_bad_level(self, wb):
        with pytest.raises(ValueError, match="unknown level"):
            wb.run_stochastic(StochasticAppDescription(), level="quantum")

    def test_run_single_node(self, wb):
        res = wb.run_single_node(
            [ifetch(0x400000), load(MemType.FLOAT64, 0), add()])
        assert isinstance(res, NodeResult)
        assert res.instructions == 3

    def test_run_smp(self):
        wb = Workbench(smp_node(2))
        res = wb.run_smp([[load(MemType.INT64, 0x100)],
                          [load(MemType.INT64, 0x100)]])
        assert isinstance(res, SMPResult)

    def test_run_smp_cluster(self):
        wb = Workbench(smp_node(2))   # ring of 2 SMP nodes
        res = wb.run_smp_cluster([
            [[compute(10), send(64, 1)], []],
            [[recv(0)], []],
        ])
        assert res.comm.messages_delivered == 1

    def test_record_traces_valid(self, wb):
        ts = wb.record_traces(make_matmul(n=8))
        validate_trace_set(ts)

    def test_determinism_across_runs(self, wb):
        a = wb.run_hybrid(make_matmul(n=8)).total_cycles
        b = wb.run_hybrid(make_matmul(n=8)).total_cycles
        assert a == b


class TestDesignSpaceIntuition:
    """The workbench exists to compare designs; check the comparisons
    point the right way."""

    def test_bigger_cache_not_slower(self):
        from repro import vary_machine

        def set_l1(m, kib):
            m.node.cache_levels[0].data.size_bytes = kib * 1024
            m.node.cache_levels[0].instr.size_bytes = kib * 1024

        small, big = vary_machine(generic_multicomputer("mesh", (2, 2)),
                                  set_l1, [1, 64])
        t_small = Workbench(small).run_hybrid(make_matmul(n=16)).total_cycles
        t_big = Workbench(big).run_hybrid(make_matmul(n=16)).total_cycles
        assert t_big <= t_small

    def test_faster_links_not_slower(self):
        from repro import vary_machine

        def set_bw(m, bw):
            m.network.link_bandwidth = bw

        slow, fast = vary_machine(generic_multicomputer("mesh", (2, 2)),
                                  set_bw, [0.5, 8.0])
        t_slow = Workbench(slow).run_hybrid(
            make_pingpong(size=8192, repeats=2)).total_cycles
        t_fast = Workbench(fast).run_hybrid(
            make_pingpong(size=8192, repeats=2)).total_cycles
        assert t_fast < t_slow


class TestVSMEntry:
    def test_run_vsm(self, wb):
        from repro.vsm import SharedRegion

        def program(ctx):
            region = SharedRegion(ctx, "wbtest", 64, page_bytes=512)
            if ctx.node_id == 0:
                for i in range(64):
                    region.write(i)
            ctx.barrier()
            region.read(0)

        res = wb.run_vsm(program)
        assert res.faults > 0
        assert res.total_cycles > 0


class TestSweepEntry:
    def test_sweep_rooted_at_bound_machine(self, wb):
        sweep = wb.sweep("bw study")
        assert sweep.label == "bw study"
        sweep.axis("bw", lambda m, v: setattr(m.network,
                                              "link_bandwidth", v),
                   [1.0, 2.0])
        original_bw = wb.machine.network.link_bandwidth
        rows = sweep.run(lambda m: {"bw_out": m.network.link_bandwidth})
        assert [r["bw_out"] for r in rows] == [1.0, 2.0]
        # The bound machine is never mutated by sweeping.
        assert wb.machine.network.link_bandwidth == original_bw
