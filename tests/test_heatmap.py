"""Link-utilization heatmap rendering."""

from __future__ import annotations

import pytest

from repro import Workbench, generic_multicomputer
from repro.analysis import link_utilization_grid, top_links
from repro.apps import alltoall_task_traces, pingpong_task_traces


@pytest.fixture(scope="module")
def mesh_result():
    wb = Workbench(generic_multicomputer("mesh", (4, 4)))
    return wb.run_comm_only(alltoall_task_traces(16, block_bytes=2048))


class TestGrid:
    def test_all_nodes_rendered(self, mesh_result):
        text = link_utilization_grid(mesh_result)
        for node in range(16):
            assert f"[{node:3d}]" in text

    def test_hot_links_shaded(self, mesh_result):
        text = link_utilization_grid(mesh_result)
        # The busiest glyphs appear somewhere in the grid.
        assert any(g in text for g in "#%@")

    def test_idle_network_renders_cold(self):
        wb = Workbench(generic_multicomputer("mesh", (2, 2)))
        from repro.operations import compute
        res = wb.run_comm_only([[compute(10)], [], [], []])
        body = "\n".join(link_utilization_grid(res).splitlines()[1:])
        assert "@" not in body and "#" not in body

    def test_non_grid_falls_back_to_table(self):
        wb = Workbench(generic_multicomputer("hypercube", (3,)))
        res = wb.run_comm_only(pingpong_task_traces(8, size=512))
        text = link_utilization_grid(res)
        assert "top" in text and "link" in text


class TestTopLinks:
    def test_ranked_descending(self, mesh_result):
        text = top_links(mesh_result, limit=5)
        values = [float(line.split()[-1])
                  for line in text.splitlines()[3:]]
        assert values == sorted(values, reverse=True)

    def test_limit_respected(self, mesh_result):
        text = top_links(mesh_result, limit=3)
        assert len(text.splitlines()) == 2 + 1 + 3   # title+hdr+rule+rows
