"""Virtual shared memory: runtime, protocol, and end-to-end behaviour."""

from __future__ import annotations

import pytest

from repro import generic_multicomputer
from repro.operations import MemType
from repro.vsm import SharedRegion, VSMConfig, VSMModel


def machine(n=4):
    return generic_multicomputer("mesh", (n, 1) if n > 1 else (1, 1))


def run(program, n=4, vsm_config=None):
    model = VSMModel(machine(n), vsm_config)
    result = model.run_application(program)
    return model, result


class TestBasics:
    def test_no_explicit_communication_needed(self):
        """The whole point: sharing without any send/recv annotation."""
        def program(ctx):
            region = SharedRegion(ctx, "a", 256, page_bytes=512)
            if ctx.node_id == 0:
                for i in range(256):
                    region.write(i)
            ctx.barrier()
            region.read(255 if ctx.node_id else 0)

        model, result = run(program)
        assert result.faults > 0
        assert result.vsm["pages_transferred"] > 0
        assert result.total_cycles > 0

    def test_local_hits_are_free_of_faults(self):
        def program(ctx):
            region = SharedRegion(ctx, "b", 64, page_bytes=512)
            if ctx.node_id == 0:
                region.write(0)            # one write fault
                for i in range(64):
                    region.write(i)        # all same page: no new faults
                    region.read(i)

        model, result = run(program)
        assert result.vsm["write_faults"] == 1
        assert result.vsm["read_faults"] == 0

    def test_accesses_feed_the_computational_model(self):
        """Shared reads/writes emit load/store operations (cache-visible)."""
        def program(ctx):
            region = SharedRegion(ctx, "c", 32, page_bytes=512)
            if ctx.node_id == 0:
                for i in range(32):
                    region.write(i)

        model, result = run(program)
        node0 = result.node_summaries[0]
        assert node0["cpu"]["op_counts"].get("store", 0) == 32

    def test_write_then_remote_read_transfers_page(self):
        def program(ctx):
            region = SharedRegion(ctx, "d", 16, page_bytes=256)
            if ctx.node_id == 0:
                region.write(0)
            ctx.barrier()
            if ctx.node_id == 1:
                region.read(0)

        model, result = run(program, n=2)
        assert result.vsm["read_faults"] == 1
        # Owner 0 supplied the page to reader 1.
        assert model.protocol.copyset_of("d", 0) >= {0, 1}

    def test_remote_write_invalidates_readers(self):
        def program(ctx):
            region = SharedRegion(ctx, "e", 16, page_bytes=256)
            region.read(0)                  # everyone becomes a reader
            ctx.barrier()
            if ctx.node_id == 3:
                region.write(0)             # invalidates the other three
            ctx.barrier()
            if ctx.node_id == 0:
                region.read(0)              # must re-fault

        model, result = run(program)
        assert result.vsm["invalidations"] >= 3
        assert model.protocol.owner_of("e", 0) == 3 or \
            model.protocol.copyset_of("e", 0) >= {0}
        # Node 0's re-read after the invalidation faulted again.
        assert result.vsm["read_faults"] >= 5


class TestProtocolState:
    def test_ownership_migrates_to_writer(self):
        def program(ctx):
            region = SharedRegion(ctx, "f", 16, page_bytes=256)
            if ctx.node_id == 2:
                region.write(0)

        model, _ = run(program)
        assert model.protocol.owner_of("f", 0) == 2
        assert model.protocol.copyset_of("f", 0) == {2}

    def test_round_robin_homes(self):
        model = VSMModel(machine(4))
        assert [model.protocol.home_of("x", p) for p in range(6)] == \
            [0, 1, 2, 3, 0, 1]

    def test_home_node_fault_is_cheap(self):
        """A fault on a page homed+owned locally needs no messages."""
        def program(ctx):
            region = SharedRegion(ctx, "g", 16, page_bytes=256)
            if ctx.node_id == 0:
                region.read(0)      # page 0 homes at node 0

        model, result = run(program)
        assert result.vsm["read_faults"] == 1
        assert result.vsm["control_messages"] == 0
        assert result.vsm["pages_transferred"] == 0


class TestConfig:
    def test_fault_overhead_visible(self):
        def program(ctx):
            region = SharedRegion(ctx, "h", 16, page_bytes=256)
            if ctx.node_id == 0:
                region.read(0)

        _, cheap = run(program, vsm_config=VSMConfig(
            fault_overhead_cycles=0.0))
        _, costly = run(program, vsm_config=VSMConfig(
            fault_overhead_cycles=10_000.0))
        assert costly.total_cycles >= cheap.total_cycles + 10_000.0

    def test_bad_config(self):
        with pytest.raises(ValueError):
            VSMConfig(request_bytes=0).validate()
        with pytest.raises(ValueError):
            VSMConfig(handler_cycles=-1).validate()

    def test_multi_cpu_rejected(self):
        from repro import smp_node
        with pytest.raises(ValueError, match="single-CPU"):
            VSMModel(smp_node(2))


class TestRuntimeErrors:
    def test_out_of_bounds(self):
        def program(ctx):
            region = SharedRegion(ctx, "i", 8, page_bytes=256)
            region.read(8)

        with pytest.raises(Exception, match="out of bounds"):
            run(program, n=2)

    def test_bad_geometry(self):
        def program(ctx):
            SharedRegion(ctx, "j", 0)

        with pytest.raises(Exception, match="n_elements"):
            run(program, n=2)

    def test_bad_page_size(self):
        def program(ctx):
            SharedRegion(ctx, "k", 8, page_bytes=100)

        with pytest.raises(Exception, match="power"):
            run(program, n=2)

    def test_recording_vsm_program_rejected(self):
        from repro.apps import ThreadedApplication
        from repro.tracegen import TraceGenerationError

        def program(ctx):
            region = SharedRegion(ctx, "l", 16, page_bytes=256)
            region.read(0)

        with pytest.raises(TraceGenerationError, match="recordable"):
            ThreadedApplication(program, 2).record()


class TestSharingPatterns:
    def test_false_sharing_costs_faults(self):
        """Two writers on one page ping-pong it; on separate pages they
        fault once each."""
        def make_program(stride):
            def program(ctx):
                region = SharedRegion(ctx, f"fs{stride}", 1024,
                                      MemType.FLOAT64, page_bytes=1024)
                idx = ctx.node_id * stride
                for _ in range(4):
                    region.write(idx)
                    ctx.barrier()
            return program

        # stride 1: both indices on page 0 (false sharing).
        _, shared = run(make_program(1), n=2)
        # stride 128: 128*8 = 1024 bytes apart -> separate pages.
        _, private = run(make_program(128), n=2)
        assert shared.vsm["write_faults"] > private.vsm["write_faults"]
        assert private.vsm["write_faults"] == 2

    def test_producer_consumer_round_trips(self):
        def program(ctx):
            region = SharedRegion(ctx, "pc", 64, page_bytes=512)
            for round_ in range(3):
                if ctx.node_id == 0:
                    region.write(0)
                ctx.barrier()
                if ctx.node_id == 1:
                    region.read(0)
                ctx.barrier()

        _, result = run(program, n=2)
        # Every round: producer re-faults for write (reader held a copy),
        # consumer re-faults for read.
        assert result.vsm["write_faults"] == 3
        assert result.vsm["read_faults"] == 3

    def test_determinism(self):
        def program(ctx):
            region = SharedRegion(ctx, "det", 128, page_bytes=512)
            for i in range(0, 128, 8):
                if i % 16 == 0 and ctx.node_id == 0:
                    region.write(i)
                elif ctx.node_id == 1:
                    region.read(min(i, 127))
                ctx.barrier()

        _, a = run(program, n=2)
        _, b = run(program, n=2)
        assert a.total_cycles == b.total_cycles
        assert a.vsm["faults"] == b.vsm["faults"]
