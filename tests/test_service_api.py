"""Service API (repro.service): job records, HTTP surface, CLI.

Three layers, bottom-up:

* **JobManager** — golden snapshots of the deterministic job records
  across the whole lifecycle (``submitted → running → done / failed /
  cancelled``): fixed field order, no wall-clock fields, digests
  normalized out (they incorporate the code version by design);
* **HTTP server** — the asyncio server + ``ServiceClient`` round
  trip: rows fetched over HTTP must be byte-identical to an
  in-process ``Sweep.run`` with the CLI's runner, plus the error
  statuses (400/404/405/409/429) and the NDJSON event stream;
* **CLI** — ``repro serve`` (subprocess, ephemeral port) driven by
  ``repro submit / status / fetch``: exit codes and output schemas.

Every assertion here is wall-clock-free: records never contain
timestamps, and the tiny sweeps are deterministic.
"""

from __future__ import annotations

import asyncio
import copy
import json
import os
import subprocess
import sys
import threading
from functools import partial
from pathlib import Path

import pytest

from repro import InProcessExecutor, Sweep
from repro.cli import _AxisSetter, _sweep_point_runner, build_machine
from repro.faults import FaultPlan, LinkFault, TransportConfig
from repro.service import (
    JobManager,
    JobScheduler,
    ResultStore,
    ServiceClient,
    ServiceError,
    ServiceServer,
    canonical_request,
    job_key,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

PRESET = "t805-grid-2x2"
AXIS = "network.link_bandwidth"
BW_VALUES = [2_000_000.0, 4_000_000.0]

SWEEP_REQUEST = {"kind": "sweep", "preset": PRESET, "rounds": 1,
                 "axes": [f"{AXIS}=2000000,4000000"]}

CHAOS_SPEC = {
    "name": "service-demo",
    "base": FaultPlan(
        seed=7, link_faults=[LinkFault(drop_prob=0.02)],
        transport=TransportConfig(timeout_cycles=50_000.0,
                                  backoff_factor=1.0,
                                  max_retries=60)).to_dict(),
    "generators": [{"kind": "severity_ladder", "name": "sev",
                    "factors": [0, 1]}],
    "slos": [{"kind": "availability", "min_fraction": 1.0}],
}
CHAOS_REQUEST = {"kind": "chaos", "preset": PRESET, "app": "pingpong",
                 "campaign": CHAOS_SPEC, "size": 64, "repeats": 1}


def expected_sweep_rows() -> list[dict]:
    """What the service must return: the CLI runner through a plain
    serial ``Sweep.run`` — the independent in-process reference."""
    sweep = Sweep(build_machine(PRESET), label=PRESET)
    sweep.axis(AXIS, _AxisSetter(AXIS), BW_VALUES)
    runner = partial(_sweep_point_runner, workload=None, rounds=1, seed=0)
    return sweep.run(runner,
                     workload_id="cli-stochastic:generic:rounds=1:seed=0")


def check_golden(name: str, value) -> None:
    path = GOLDEN_DIR / f"{name}.json"
    if os.environ.get("REPRO_REGEN_GOLDEN") or not path.exists():
        path.write_text(json.dumps(value, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"golden snapshot {name} (re)generated")
    golden = json.loads(path.read_text())
    assert value == golden, (
        f"{name}: service records diverged from the golden snapshot; if "
        f"the change is intentional, regenerate with REPRO_REGEN_GOLDEN=1")


def normalize(record: dict) -> dict:
    """Replace run-scoped digests; everything else must be stable."""
    out = copy.deepcopy(record)
    assert out["id"].startswith(out["key"][:12])
    out["id"] = "<id>"
    out["key"] = "<key>"
    return out


def event_shapes(events: list[dict]) -> list:
    """Events minus the row payloads (rows are pinned separately)."""
    shapes = []
    for event in events:
        if event["event"] == "state":
            shapes.append([event["state"], event.get("error")])
        else:
            shapes.append(["progress", event["done"], event["total"]])
    return shapes


@pytest.fixture
def manager():
    managers = []

    def make(**kwargs):
        kwargs.setdefault("executor", InProcessExecutor(workers=2))
        mgr = JobManager(**kwargs)
        managers.append(mgr)
        return mgr

    yield make
    for mgr in managers:
        mgr.close()


# ---------------------------------------------------------------------------
# Request canonicalization + identity
# ---------------------------------------------------------------------------

class TestRequests:
    def test_canonical_fills_defaults_deterministically(self):
        canon = canonical_request(SWEEP_REQUEST)
        assert canon == canonical_request(dict(reversed(
            list(SWEEP_REQUEST.items()))))
        assert canon["tenant"] == "default" and canon["lane"] == "normal"
        assert canon["rounds"] == 1 and canon["seed"] == 0
        assert list(canon) == sorted(canon)

    @pytest.mark.parametrize("bad,match", [
        ({"kind": "dream"}, "unknown job kind"),
        ({"kind": "sweep", "preset": PRESET, "axes": ["x=1"],
          "frobnicate": True}, "unknown request fields"),
        ({"kind": "sweep", "preset": PRESET}, "missing required"),
        ("not a dict", "JSON object"),
    ])
    def test_malformed_requests_are_400(self, bad, match):
        with pytest.raises(ServiceError, match=match) as info:
            canonical_request(bad)
        assert info.value.status == 400

    def test_job_key_is_content_addressed(self):
        canon = canonical_request(SWEEP_REQUEST)
        assert job_key(canon) == job_key(json.loads(json.dumps(canon)))
        other = dict(canon, seed=1)
        assert job_key(other) != job_key(canon)

    def test_deep_validation_happens_at_submit(self, manager):
        mgr = manager(autostart=False)
        with pytest.raises(ServiceError, match="bad sweep request") as info:
            mgr.submit({"kind": "sweep", "preset": PRESET,
                        "axes": ["network.warp_speed=1,2"]})
        assert info.value.status == 400


# ---------------------------------------------------------------------------
# Job lifecycle: golden records
# ---------------------------------------------------------------------------

class TestLifecycleGolden:
    def test_lifecycle_records_match_golden(self, manager):
        snapshots = {}

        # -- done ------------------------------------------------------
        mgr = manager()
        record = mgr.submit(SWEEP_REQUEST)
        assert record.wait(timeout=120.0) == "done"
        assert record.rows == expected_sweep_rows()
        snapshots["done"] = {
            "record": normalize(record.to_dict()),
            "events": event_shapes(record.events),
            "result_keys": list(record.result_payload()),
        }

        # -- failed (job budget exhausted before the first row) --------
        failed = mgr.submit(dict(SWEEP_REQUEST, timeout_s=1e-9))
        assert failed.wait(timeout=120.0) == "failed"
        snapshots["failed"] = {
            "record": normalize(failed.to_dict()),
            "events": event_shapes(failed.events),
        }

        # -- cancelled (before dispatch ever sees it) ------------------
        cold = manager(autostart=False)
        doomed = cold.submit(SWEEP_REQUEST)
        assert cold.cancel(doomed.job_id) is True
        assert cold.cancel(doomed.job_id) is False
        snapshots["cancelled"] = {
            "record": normalize(doomed.to_dict()),
            "events": event_shapes(doomed.events),
        }
        check_golden("service_job_lifecycle", snapshots)

    def test_record_field_order_is_fixed(self, manager):
        mgr = manager(autostart=False)
        record = mgr.submit(SWEEP_REQUEST)
        assert list(record.to_dict()) == [
            "id", "key", "kind", "tenant", "lane", "state", "done",
            "total", "error", "cache", "request"]
        assert not any("time" in k or "wall" in k
                       for k in record.to_dict())

    def test_cancel_preserves_other_jobs_rows(self, manager):
        mgr = manager(autostart=False)
        job_a = mgr.submit(SWEEP_REQUEST)
        job_b = mgr.submit(dict(SWEEP_REQUEST, seed=1))
        job_c = mgr.submit(dict(SWEEP_REQUEST, seed=2))
        assert mgr.cancel(job_b.job_id) is True
        mgr.start()
        assert job_a.wait(timeout=120.0) == "done"
        assert job_c.wait(timeout=120.0) == "done"
        assert job_b.state == "cancelled" and job_b.rows is None
        assert job_a.rows == expected_sweep_rows()
        assert len(job_c.rows) == 2
        assert not any("error" in row for row in job_c.rows)

    def test_store_content_addresses_records(self, manager, tmp_path):
        store = ResultStore(tmp_path / "store")
        mgr = manager(store=store)
        first = mgr.submit(SWEEP_REQUEST)
        assert first.wait(timeout=120.0) == "done"
        assert first.cache == {"hits": 0, "misses": 2, "stores": 2}
        again = mgr.submit(SWEEP_REQUEST)
        assert again.wait(timeout=120.0) == "done"
        assert again.cache == {"hits": 2, "misses": 0, "stores": 0}
        assert again.key == first.key and again.job_id != first.job_id
        assert store.job_count() == 1   # same key -> same record path
        stored = store.get_job(first.key)
        assert stored["result"]["rows"] == expected_sweep_rows()


# ---------------------------------------------------------------------------
# HTTP surface
# ---------------------------------------------------------------------------

@pytest.fixture
def http_service(manager, tmp_path):
    services = []

    def make(**manager_kwargs):
        manager_kwargs.setdefault("store", ResultStore(
            tmp_path / f"store{len(services)}"))
        mgr = manager(**manager_kwargs)
        server = ServiceServer(mgr)
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        asyncio.run_coroutine_threadsafe(server.start(), loop).result(30)
        services.append((server, loop, thread))
        return mgr, ServiceClient(server.url)

    yield make
    for server, loop, thread in services:
        asyncio.run_coroutine_threadsafe(server.stop(), loop).result(30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)


class TestHTTP:
    def test_sweep_rows_over_http_byte_identical_to_in_process(
            self, http_service):
        mgr, client = http_service()
        assert client.health() == {"ok": True}
        record = client.submit(SWEEP_REQUEST)
        record = client.wait(record["id"], poll_s=0.05, timeout=120.0)
        assert record["state"] == "done"
        result = client.result(record["id"])
        direct = expected_sweep_rows()
        assert json.dumps(result["rows"], sort_keys=True) == \
            json.dumps(direct, sort_keys=True)
        # Warm re-submission: same key, all cache hits.
        warm = client.submit(SWEEP_REQUEST)
        warm = client.wait(warm["id"], poll_s=0.05, timeout=120.0)
        assert warm["key"] == record["key"]
        assert warm["cache"] == {"hits": 2, "misses": 0, "stores": 0}

    def test_chaos_job_over_http(self, http_service):
        mgr, client = http_service()
        record = client.submit(CHAOS_REQUEST)
        # baseline rung + severity ladder factors [0, 1]
        assert record["total"] == 3
        record = client.wait(record["id"], poll_s=0.05, timeout=300.0)
        assert record["state"] == "done"
        campaign = client.result(record["id"])["campaign"]
        assert campaign["campaign"] == "service-demo"
        assert campaign["rungs"] == 3
        assert len(campaign["rows"]) == 3
        assert isinstance(campaign["ok"], bool)

    def test_event_stream_and_stable_field_order(self, http_service):
        mgr, client = http_service()
        record = client.submit(SWEEP_REQUEST)
        events = list(client.events(record["id"]))
        assert event_shapes(events) == [
            ["submitted", None], ["running", None],
            ["progress", 1, 2], ["progress", 2, 2], ["done", None]]
        status = client.status(record["id"])
        # The server serializes sort_keys=True; json.loads preserves
        # document order, so a sorted listing pins the byte layout.
        assert list(status) == sorted(status)
        assert set(status) == {
            "id", "key", "kind", "tenant", "lane", "state", "done",
            "total", "error", "cache", "request"}

    def test_http_error_statuses(self, http_service):
        mgr, client = http_service(autostart=False,
                                   scheduler=JobScheduler(tenant_quota=1))
        with pytest.raises(ServiceError) as info:
            client.status("nope")
        assert info.value.status == 404
        with pytest.raises(ServiceError) as info:
            client.submit({"kind": "dream"})
        assert info.value.status == 400
        record = client.submit(SWEEP_REQUEST)
        with pytest.raises(ServiceError) as info:    # quota: 1 active job
            client.submit(dict(SWEEP_REQUEST, seed=1))
        assert info.value.status == 429
        with pytest.raises(ServiceError) as info:    # still queued
            client.result(record["id"])
        assert info.value.status == 409
        assert client.cancel(record["id"]) is True
        assert client.cancel(record["id"]) is False

    def test_method_and_path_errors(self, http_service):
        import http.client
        mgr, client = http_service()
        conn = http.client.HTTPConnection(client.host, client.port,
                                          timeout=30)
        try:
            conn.request("DELETE", "/v1/jobs")
            assert conn.getresponse().status == 405
        finally:
            conn.close()
        with pytest.raises(ServiceError) as info:
            client._request("GET", "/v2/jobs")
        assert info.value.status == 404

    def test_metrics_endpoint(self, http_service):
        mgr, client = http_service()
        record = client.submit(SWEEP_REQUEST)
        client.wait(record["id"], poll_s=0.05, timeout=120.0)
        metrics = client.metrics()
        assert metrics["service.jobs.submitted.count"] == 1
        assert metrics["service.jobs.completed.count"] == 1
        assert metrics["service.jobs.failed.count"] == 0
        assert "service.records.total" in metrics


# ---------------------------------------------------------------------------
# CLI: repro serve / submit / status / fetch
# ---------------------------------------------------------------------------

@pytest.fixture(scope="class")
def cli_server(tmp_path_factory):
    store = tmp_path_factory.mktemp("service-store")
    src = str(Path(__file__).parent.parent / "src")
    env = dict(os.environ, PYTHONPATH=src)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--executor", "inprocess", "--store", str(store)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=env, text=True)
    try:
        line = proc.stdout.readline()
        assert "repro service listening on " in line, line
        url = line.strip().rsplit(" ", 1)[-1]
        yield url
    finally:
        proc.terminate()
        proc.wait(timeout=30)


SUBMIT_ARGS = ["submit", "sweep", PRESET,
               "--axis", f"{AXIS}=2000000,4000000", "--rounds", "1"]


@pytest.mark.usefixtures("cli_server")
class TestCLI:
    def test_submit_status_fetch_roundtrip(self, cli_server, capsys):
        from repro.cli import main
        rc = main(SUBMIT_ARGS + ["--server", cli_server, "--wait",
                                 "--poll", "0.05"])
        record = json.loads(capsys.readouterr().out)
        assert rc == 0 and record["state"] == "done"

        assert main(["status", record["id"], "--server", cli_server]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["state"] == "done"
        assert status["cache"]["misses"] + status["cache"]["hits"] == 2

        assert main(["fetch", record["id"], "--server", cli_server]) == 0
        fetched = capsys.readouterr().out
        expected = json.dumps(expected_sweep_rows(), indent=2,
                              sort_keys=True) + "\n"
        assert fetched == expected   # byte-identical: the CI smoke cmp

    def test_failed_job_exit_codes(self, cli_server, capsys):
        from repro.cli import main
        rc = main(SUBMIT_ARGS + ["--server", cli_server, "--timeout",
                                 "1e-9", "--wait", "--poll", "0.05"])
        record = json.loads(capsys.readouterr().out)
        assert rc == 1 and record["state"] == "failed"
        assert main(["status", record["id"],
                     "--server", cli_server]) == 1
        capsys.readouterr()

    def test_unknown_job_is_a_service_error(self, cli_server):
        from repro.cli import main
        with pytest.raises(SystemExit,
                           match=r"service error \(404\)"):
            main(["status", "nope", "--server", cli_server])
        with pytest.raises(SystemExit,
                           match=r"service error \(404\)"):
            main(["fetch", "nope", "--server", cli_server])

    def test_unreachable_server(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="cannot reach"):
            main(["status", "job", "--server",
                  "http://127.0.0.1:9"])  # discard port: nothing listens
