"""Variable descriptor table: declaration, scopes, registers, addresses."""

from __future__ import annotations

import pytest

from repro.operations import MemType
from repro.tracegen import (
    TargetABI,
    VariableDescriptorTable,
    VarKind,
    VDTError,
)


class TestDeclaration:
    def test_global_gets_data_address(self):
        vdt = VariableDescriptorTable()
        v = vdt.declare("g", VarKind.GLOBAL, MemType.FLOAT64, 10)
        assert not v.in_register
        assert v.address >= vdt.abi.data_base
        assert v.size_bytes == 80

    def test_globals_do_not_overlap(self):
        vdt = VariableDescriptorTable()
        a = vdt.declare("a", VarKind.GLOBAL, MemType.FLOAT64, 4)
        b = vdt.declare("b", VarKind.GLOBAL, MemType.INT32, 4)
        assert b.address >= a.address + a.size_bytes

    def test_alignment(self):
        vdt = VariableDescriptorTable()
        vdt.declare("c", VarKind.GLOBAL, MemType.INT8, 3)
        d = vdt.declare("d", VarKind.GLOBAL, MemType.FLOAT64, 1)
        assert d.address % 8 == 0

    def test_scalar_local_gets_register(self):
        vdt = VariableDescriptorTable()
        v = vdt.declare("i", VarKind.LOCAL, MemType.INT32)
        assert v.in_register

    def test_array_local_goes_to_stack(self):
        vdt = VariableDescriptorTable()
        v = vdt.declare("buf", VarKind.LOCAL, MemType.FLOAT64, 16)
        assert not v.in_register
        assert v.address >= vdt.abi.stack_base

    def test_register_exhaustion_spills_to_stack(self):
        abi = TargetABI(n_int_registers=2, n_float_registers=1)
        vdt = VariableDescriptorTable(abi)
        regs = [vdt.declare(f"i{k}", VarKind.LOCAL, MemType.INT32)
                for k in range(3)]
        assert [v.in_register for v in regs] == [True, True, False]
        f = [vdt.declare(f"f{k}", VarKind.LOCAL, MemType.FLOAT64)
             for k in range(2)]
        assert [v.in_register for v in f] == [True, False]

    def test_duplicate_rejected(self):
        vdt = VariableDescriptorTable()
        vdt.declare("x", VarKind.LOCAL, MemType.INT32)
        with pytest.raises(VDTError):
            vdt.declare("x", VarKind.LOCAL, MemType.INT32)

    def test_zero_elements_rejected(self):
        vdt = VariableDescriptorTable()
        with pytest.raises(VDTError):
            vdt.declare("z", VarKind.LOCAL, MemType.INT32, 0)

    def test_element_address(self):
        vdt = VariableDescriptorTable()
        v = vdt.declare("arr", VarKind.GLOBAL, MemType.FLOAT64, 8)
        assert v.element_address(3) == v.address + 24
        with pytest.raises(VDTError):
            v.element_address(8)
        with pytest.raises(VDTError):
            v.element_address(-1)


class TestScopes:
    def test_shadowing(self):
        vdt = VariableDescriptorTable()
        outer = vdt.declare("x", VarKind.GLOBAL, MemType.INT32)
        vdt.push_scope()
        inner = vdt.declare("x", VarKind.LOCAL, MemType.FLOAT64)
        assert vdt.lookup("x") is inner
        vdt.pop_scope()
        assert vdt.lookup("x") is outer

    def test_scope_frees_registers(self):
        abi = TargetABI(n_int_registers=1, n_float_registers=0)
        vdt = VariableDescriptorTable(abi)
        vdt.declare("a", VarKind.LOCAL, MemType.INT32)     # takes the reg
        vdt.push_scope()
        # Fresh frame: full register budget again.
        b = vdt.declare("b", VarKind.LOCAL, MemType.INT32)
        assert b.in_register
        vdt.pop_scope()

    def test_pop_outermost_rejected(self):
        vdt = VariableDescriptorTable()
        with pytest.raises(VDTError):
            vdt.pop_scope()

    def test_undeclared_lookup(self):
        vdt = VariableDescriptorTable()
        with pytest.raises(VDTError):
            vdt.lookup("ghost")
        assert "ghost" not in vdt

    def test_len_and_contains(self):
        vdt = VariableDescriptorTable()
        vdt.declare("g", VarKind.GLOBAL, MemType.INT32)
        vdt.push_scope()
        vdt.declare("l", VarKind.LOCAL, MemType.INT32)
        assert len(vdt) == 2
        assert "g" in vdt and "l" in vdt

    def test_globals_visible_in_scope(self):
        vdt = VariableDescriptorTable()
        g = vdt.declare("shared", VarKind.GLOBAL, MemType.FLOAT64)
        vdt.push_scope()
        assert vdt.lookup("shared") is g
