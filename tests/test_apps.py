"""Reference workloads: trace validity and expected structure."""

from __future__ import annotations

import pytest

from repro import Workbench, generic_multicomputer
from repro.apps import (
    ThreadedApplication,
    alltoall_task_traces,
    make_alltoall,
    make_jacobi,
    make_matmul,
    make_pingpong,
    make_pipeline,
    make_reduction,
    matmul_flops,
    pingpong_task_traces,
    pipeline_task_traces,
)
from repro.operations import OpCode, validate_trace_set


@pytest.fixture(scope="module")
def wb() -> Workbench:
    return Workbench(generic_multicomputer("mesh", (2, 2)))


class TestRecordedValidity:
    @pytest.mark.parametrize("program_factory", [
        lambda: make_matmul(n=8),
        lambda: make_jacobi(grid=8, iterations=2),
        lambda: make_pingpong(size=128, repeats=2),
        lambda: make_alltoall(block_bytes=64),
        lambda: make_pipeline(items=3, item_bytes=128),
        lambda: make_reduction(local_elems=16),
    ], ids=["matmul", "jacobi", "pingpong", "alltoall", "pipeline",
            "reduction"])
    @pytest.mark.parametrize("n_nodes", [2, 4])
    def test_traces_matched(self, program_factory, n_nodes):
        ts = ThreadedApplication(program_factory(), n_nodes).record()
        validate_trace_set(ts)


class TestMatmul:
    def test_flops_formula(self):
        assert matmul_flops(10) == 2000

    def test_mul_count_matches_n_cubed(self):
        ts = ThreadedApplication(make_matmul(n=8, gather=False), 2).record()
        muls = sum(t.op_histogram().get(OpCode.MUL, 0) for t in ts)
        assert muls == 8 ** 3

    def test_more_nodes_than_rows(self):
        ts = ThreadedApplication(make_matmul(n=2), 4).record()
        validate_trace_set(ts)

    def test_runs_hybrid(self, wb):
        res = wb.run_hybrid(make_matmul(n=8))
        assert res.total_cycles > 0

    def test_bad_size(self):
        with pytest.raises(ValueError):
            make_matmul(n=0)


class TestJacobi:
    def test_halo_messages(self):
        ts = ThreadedApplication(make_jacobi(grid=8, iterations=3),
                                 4).record()
        sends = sum(t.op_histogram().get(OpCode.SEND, 0) for t in ts)
        # interior nodes: 2 sends, edges: 1; per iteration: 2*2 + 2*1 = 6.
        assert sends == 3 * 6

    def test_single_node_no_comm(self):
        ts = ThreadedApplication(make_jacobi(grid=8, iterations=1),
                                 1).record()
        assert ts[0].communication_count == 0

    def test_bad_params(self):
        with pytest.raises(ValueError):
            make_jacobi(grid=2)
        with pytest.raises(ValueError):
            make_jacobi(grid=8, iterations=0)


class TestPingpong:
    def test_round_trip_count(self, wb):
        res = wb.run_hybrid(make_pingpong(size=256, repeats=3))
        assert res.comm.messages_delivered == 6

    def test_task_traces(self):
        ts = pingpong_task_traces(4, size=128, repeats=2,
                                  think_cycles=100.0)
        validate_trace_set(ts)
        assert ts[0].op_histogram()[OpCode.COMPUTE] == 2

    def test_same_node_rejected(self):
        with pytest.raises(ValueError):
            pingpong_task_traces(2, a=0, b=0)


class TestAlltoall:
    def test_every_pair_communicates(self):
        n = 4
        ts = alltoall_task_traces(n, block_bytes=64)
        validate_trace_set(ts)
        for t in ts:
            dests = {op.peer for op in t if op.code is OpCode.SEND}
            assert dests == set(range(n)) - {t.node}

    def test_runs_hybrid(self, wb):
        res = wb.run_hybrid(make_alltoall(block_bytes=128))
        assert res.comm.messages_delivered == 4 * 3


class TestPipeline:
    def test_item_flow(self, wb):
        res = wb.run_hybrid(make_pipeline(items=3, item_bytes=256))
        # 3 stages forward: (n_nodes - 1) * items messages.
        assert res.comm.messages_delivered == 3 * 3

    def test_imbalanced_stage_dominates(self):
        balanced = pipeline_task_traces(4, items=6, stage_cycles=1000.0)
        skewed = pipeline_task_traces(4, items=6,
                                      stage_cycles=[1000, 5000, 1000, 1000])
        wb = Workbench(generic_multicomputer("ring", (4,)))
        t_bal = wb.run_comm_only(balanced).total_cycles
        t_skew = wb.run_comm_only(skewed).total_cycles
        assert t_skew > t_bal * 2

    def test_bad_stage_list(self):
        with pytest.raises(ValueError):
            pipeline_task_traces(3, stage_cycles=[1.0, 2.0])


class TestReduction:
    @pytest.mark.parametrize("n", [2, 4])
    def test_allreduce_correct_payloads(self, n):
        # The program itself asserts the reduced value on every node.
        ts = ThreadedApplication(make_reduction(local_elems=8), n).record()
        validate_trace_set(ts)

    def test_runs_hybrid(self, wb):
        res = wb.run_hybrid(make_reduction(local_elems=16))
        assert res.total_cycles > 0
