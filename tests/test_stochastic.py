"""Stochastic trace generator: determinism, validity, mix fidelity."""

from __future__ import annotations

import pytest

from repro.operations import OpCode, trace_mix, validate_trace_set
from repro.tracegen import (
    CommunicationBehaviour,
    InstructionMix,
    MemoryBehaviour,
    StochasticAppDescription,
    StochasticGenerator,
)


def make_gen(n_nodes=4, seed=0, **desc_kw) -> StochasticGenerator:
    return StochasticGenerator(StochasticAppDescription(**desc_kw),
                               n_nodes, seed=seed)


class TestDeterminism:
    def test_same_seed_same_traces(self):
        a = make_gen(seed=42).generate_instruction_level(3000)
        b = make_gen(seed=42).generate_instruction_level(3000)
        for ta, tb in zip(a, b):
            assert ta == tb

    def test_different_seed_different_traces(self):
        a = make_gen(seed=1).generate_instruction_level(3000)
        b = make_gen(seed=2).generate_instruction_level(3000)
        assert any(ta != tb for ta, tb in zip(a, b))

    def test_task_level_deterministic(self):
        a = make_gen(seed=9).generate_task_level(30)
        b = make_gen(seed=9).generate_task_level(30)
        for ta, tb in zip(a, b):
            assert ta == tb


class TestValidity:
    @pytest.mark.parametrize("n_nodes", [1, 2, 3, 4, 7])
    def test_instruction_level_matched(self, n_nodes):
        ts = make_gen(n_nodes=n_nodes).generate_instruction_level(2000)
        validate_trace_set(ts)

    @pytest.mark.parametrize("n_nodes", [1, 2, 5, 8])
    def test_task_level_matched(self, n_nodes):
        ts = make_gen(n_nodes=n_nodes).generate_task_level(20)
        validate_trace_set(ts)

    def test_async_rounds_matched(self):
        gen = make_gen(comm=CommunicationBehaviour(async_fraction=1.0))
        validate_trace_set(gen.generate_task_level(20))

    def test_neighbour_pattern(self):
        gen = make_gen(comm=CommunicationBehaviour(pattern="neighbour"))
        ts = gen.generate_task_level(10)
        validate_trace_set(ts)
        for t in ts:
            for op in t:
                if op.code in (OpCode.SEND, OpCode.RECV):
                    assert op.peer == t.node ^ 1


class TestShape:
    def test_target_op_count_roughly_met(self):
        ts = make_gen().generate_instruction_level(10000)
        for t in ts:
            comp = t.computational_count
            assert 0.5 * 10000 < comp < 2.0 * 10000

    def test_one_ifetch_per_instruction(self):
        ts = make_gen(n_nodes=1).generate_instruction_level(5000)
        hist = ts[0].op_histogram()
        ifetches = hist.get(OpCode.IFETCH, 0)
        others = sum(n for c, n in hist.items()
                     if c != OpCode.IFETCH)
        assert ifetches == others

    def test_mix_tracks_weights(self):
        mix = InstructionMix(load=0.5, store=0.0, loadc=0.0, add=0.5,
                             sub=0.0, mul=0.0, div=0.0, branch=0.0,
                             call=0.0, ret=0.0)
        gen = make_gen(n_nodes=1, mix=mix)
        ts = gen.generate_instruction_level(8000)
        observed = trace_mix(ts[0])
        # Excluding ifetch (half the trace), load and add split the rest.
        assert observed.get("load", 0) == pytest.approx(0.25, abs=0.03)
        assert observed.get("add", 0) == pytest.approx(0.25, abs=0.03)
        assert "div" not in observed

    def test_addresses_within_regions(self):
        desc_mem = MemoryBehaviour(working_set_bytes=1 << 16)
        gen = make_gen(n_nodes=1, memory=desc_mem)
        ts = gen.generate_instruction_level(4000)
        for op in ts[0]:
            if op.code in (OpCode.LOAD, OpCode.STORE):
                in_data = (desc_mem.data_base <= op.address
                           < desc_mem.data_base + desc_mem.working_set_bytes)
                in_stack = (desc_mem.stack_base <= op.address
                            < desc_mem.stack_base + desc_mem.stack_bytes)
                assert in_data or in_stack

    def test_loop_model_repeats_addresses(self):
        ts = make_gen(n_nodes=1).generate_instruction_level(5000)
        fetches = [op.address for op in ts[0] if op.code is OpCode.IFETCH]
        # Loopy code: far fewer distinct fetch addresses than fetches.
        assert len(set(fetches)) < len(fetches) / 3

    def test_message_sizes_in_range(self):
        comm = CommunicationBehaviour(min_message_bytes=100,
                                      max_message_bytes=1000)
        gen = make_gen(comm=comm)
        ts = gen.generate_task_level(30)
        sizes = [op.size for t in ts for op in t
                 if op.code in (OpCode.SEND, OpCode.ASEND)]
        assert sizes
        assert all(100 <= s <= 1100 for s in sizes)

    def test_task_durations_near_mean(self):
        gen = make_gen(mean_task_cycles=5000.0)
        ts = gen.generate_task_level(50, imbalance=0.05)
        durations = [op.duration for t in ts for op in t
                     if op.code is OpCode.COMPUTE]
        mean = sum(durations) / len(durations)
        assert mean == pytest.approx(5000.0, rel=0.1)

    def test_zero_imbalance_exact(self):
        gen = make_gen(mean_task_cycles=1234.0)
        ts = gen.generate_task_level(5, imbalance=0.0)
        for t in ts:
            for op in t:
                if op.code is OpCode.COMPUTE:
                    assert op.duration == 1234.0


class TestErrors:
    def test_bad_n_nodes(self):
        with pytest.raises(ValueError):
            StochasticGenerator(StochasticAppDescription(), 0)

    def test_bad_targets(self):
        gen = make_gen()
        with pytest.raises(ValueError):
            gen.generate_instruction_level(0)
        with pytest.raises(ValueError):
            gen.generate_task_level(0)
        with pytest.raises(ValueError):
            gen.generate_task_level(5, imbalance=-1)

    def test_bad_description(self):
        with pytest.raises(ValueError):
            StochasticAppDescription(loopback_prob=1.5).validate()
        with pytest.raises(ValueError):
            StochasticAppDescription(
                comm=CommunicationBehaviour(pattern="gossip")).validate()
        with pytest.raises(ValueError):
            StochasticAppDescription(
                memory=MemoryBehaviour(sequential_fraction=2.0)).validate()
        with pytest.raises(ValueError):
            InstructionMix(load=0, store=0, loadc=0, add=0, sub=0, mul=0,
                           div=0, branch=0, call=0, ret=0).weights()
