"""Executor conformance (repro.parallel.executor).

Both backends — :class:`InProcessExecutor` (pool path, synchronous
submit) and :class:`LocalAsyncExecutor` (persistent worker supervisor,
async submit) — must be *observably identical* for well-behaved jobs:
same rows (byte-for-byte, matching a direct ``Sweep.run``), same row
ordering, same error rows with the same remote tracebacks, same cache
cold/warm behavior, same event sequences.  The suite parameterizes
every shared contract over both backends, then pins the
LocalAsync-only durability features (crash recovery, crash budget,
job timeouts, mid-job cancel) separately.

Everything that crosses a process boundary lives at module level
(picklable), matching ``tests/test_parallel_sweep.py``.
"""

from __future__ import annotations

import functools
import json
import os
import time

import pytest

from repro import (
    InProcessExecutor,
    JobSpec,
    LocalAsyncExecutor,
    ResultCache,
)
from repro.parallel import TERMINAL_STATES
from repro.parallel.executor import ExecutorError
from tests.test_parallel_sweep import (
    bw_sweep,
    echo_runner,
    failing_runner,
)


# ---------------------------------------------------------------------------
# Module-level runners (picklable for the worker processes)
# ---------------------------------------------------------------------------

def crash_once_runner(machine, flag_dir):
    """Kill the hosting process the first time each variant is seen."""
    bw = machine.network.link_bandwidth
    flag = os.path.join(flag_dir, f"seen-{bw}")
    if not os.path.exists(flag):
        open(flag, "w").close()
        os._exit(41)
    return {"bw_out": bw}


def always_crash_runner(machine):
    os._exit(43)


def slow_runner(machine):
    time.sleep(0.25)  # repro: noqa[PY002] - host-side stall, not sim time
    return {"bw_out": machine.network.link_bandwidth}


# ---------------------------------------------------------------------------
# Backend parameterization
# ---------------------------------------------------------------------------

BACKENDS = {
    "inprocess": functools.partial(InProcessExecutor, workers=2),
    "localasync": functools.partial(LocalAsyncExecutor, workers=2),
}


@pytest.fixture(params=sorted(BACKENDS), ids=sorted(BACKENDS))
def make_executor(request):
    """A factory building the parameterized backend; closes them all."""
    opened = []

    def make(**kwargs):
        executor = BACKENDS[request.param](**kwargs)
        opened.append(executor)
        return executor

    yield make
    for executor in opened:
        executor.close()


def run_job(executor, spec, **submit_kwargs):
    job_id = executor.submit(spec, **submit_kwargs)
    status = executor.wait(job_id, timeout=120.0)
    return job_id, status


# ---------------------------------------------------------------------------
# Shared contracts (both backends)
# ---------------------------------------------------------------------------

class TestRowConformance:
    def test_rows_byte_identical_to_direct_sweep_run(self, make_executor):
        direct = bw_sweep().run(echo_runner)
        executor = make_executor()
        job_id, status = run_job(executor, JobSpec(
            runner=echo_runner, points=bw_sweep().points()))
        assert status.state == "done"
        rows = executor.result(job_id)
        assert json.dumps(rows, sort_keys=True) == \
            json.dumps(direct, sort_keys=True)

    def test_rows_come_back_in_point_order(self, make_executor):
        values = [8.0, 1.0, 4.0, 2.0]   # deliberately unsorted
        executor = make_executor()
        job_id, status = run_job(executor, JobSpec(
            runner=echo_runner, points=bw_sweep(values).points()))
        assert status.state == "done"
        rows = executor.result(job_id)
        assert [row["bw"] for row in rows] == values
        assert [row["bw_out"] for row in rows] == values

    def test_sweep_run_executor_kwarg(self, make_executor):
        executor = make_executor()
        direct = bw_sweep().run(echo_runner)
        via_executor = bw_sweep().run(echo_runner, executor=executor)
        assert via_executor == direct
        with pytest.raises(ValueError, match="not both"):
            bw_sweep().run(echo_runner, workers=2, executor=executor)

    def test_error_rows_match_serial_including_traceback(self,
                                                         make_executor):
        serial = bw_sweep([1.0, 2.0, 4.0]).run(failing_runner)
        executor = make_executor()
        job_id, status = run_job(executor, JobSpec(
            runner=failing_runner, points=bw_sweep([1.0, 2.0, 4.0]).points()))
        assert status.state == "done"
        rows = executor.result(job_id)
        assert rows == serial
        bad = rows[1]
        assert bad["error"].startswith("ValueError: bandwidth 2.0 is cursed")
        assert "failing_runner" in bad["traceback"]


class TestCacheConformance:
    def test_cold_then_warm_job_cache_stats(self, make_executor, tmp_path):
        cache = ResultCache(tmp_path)
        executor = make_executor()
        spec = JobSpec(runner=echo_runner, points=bw_sweep().points(),
                       cache=cache)
        _, cold = run_job(executor, spec)
        assert cold.state == "done"
        assert cold.cache == {"hits": 0, "misses": 4, "stores": 4}
        warm_spec = JobSpec(runner=echo_runner, points=bw_sweep().points(),
                            cache=cache)
        warm_id, warm = run_job(executor, warm_spec)
        assert warm.cache == {"hits": 4, "misses": 0, "stores": 0}
        assert executor.result(warm_id) == bw_sweep().run(echo_runner)

    def test_executor_default_cache_used_when_spec_cache_none(
            self, make_executor, tmp_path):
        # Regression: an *empty* ResultCache is falsy (defines __len__),
        # so `spec.cache or self.cache` used to discard it silently.
        executor = make_executor(cache=ResultCache(tmp_path))
        spec = JobSpec(runner=echo_runner, points=bw_sweep().points())
        _, cold = run_job(executor, spec)
        assert cold.cache == {"hits": 0, "misses": 4, "stores": 4}
        _, warm = run_job(executor, JobSpec(
            runner=echo_runner, points=bw_sweep().points()))
        assert warm.cache == {"hits": 4, "misses": 0, "stores": 0}

    def test_warm_job_still_streams_progress_to_100_percent(
            self, make_executor, tmp_path):
        cache = ResultCache(tmp_path)
        executor = make_executor()
        run_job(executor, JobSpec(runner=echo_runner,
                                  points=bw_sweep().points(), cache=cache))
        events = []
        warm_id, warm = run_job(
            executor,
            JobSpec(runner=echo_runner, points=bw_sweep().points(),
                    cache=cache),
            on_event=events.append)
        assert warm.state == "done"
        progress = [e for e in events if e["event"] == "progress"]
        assert [e["done"] for e in progress] == [1, 2, 3, 4]
        assert all(e["total"] == 4 for e in progress)
        assert list(executor.stream(warm_id)) == events


class TestLifecycleConformance:
    def test_event_sequences_identical_across_backends(self):
        streams = {}
        for name, factory in BACKENDS.items():
            events = []
            with factory() as executor:
                run_job(executor,
                        JobSpec(runner=echo_runner,
                                points=bw_sweep([1.0, 2.0]).points()),
                        on_event=events.append)
            streams[name] = events
        assert streams["inprocess"] == streams["localasync"]
        kinds = [(e["event"], e.get("state")) for e in streams["inprocess"]]
        assert kinds == [("state", "running"), ("progress", None),
                         ("progress", None), ("state", "done")]

    def test_poll_and_result_lifecycle(self, make_executor):
        executor = make_executor()
        job_id, status = run_job(executor, JobSpec(
            runner=echo_runner, points=bw_sweep([1.0]).points()))
        polled = executor.poll(job_id)
        assert polled.to_dict() == status.to_dict()
        assert list(polled.to_dict()) == \
            ["job_id", "state", "done", "total", "error", "cache"]
        assert (polled.done, polled.total) == (1, 1)
        with pytest.raises(ExecutorError, match="unknown job"):
            executor.poll("no-such-job")
        with pytest.raises(ExecutorError, match="duplicate job id"):
            executor.submit(JobSpec(runner=echo_runner,
                                    points=bw_sweep([1.0]).points()),
                            job_id=job_id)

    def test_cancel_after_terminal_returns_false(self, make_executor):
        executor = make_executor()
        job_id, status = run_job(executor, JobSpec(
            runner=echo_runner, points=bw_sweep([1.0]).points()))
        assert status.state in TERMINAL_STATES
        assert executor.cancel(job_id) is False

    def test_on_error_raise_fails_the_job_not_the_executor(self,
                                                           make_executor):
        executor = make_executor()
        job_id, status = run_job(executor, JobSpec(
            runner=failing_runner, points=bw_sweep([1.0, 2.0]).points(),
            on_error="raise"))
        assert status.state == "failed"
        assert "bandwidth 2.0 is cursed" in status.error
        with pytest.raises(ExecutorError, match="failed"):
            executor.result(job_id)
        # The executor survives a failed job.
        _, ok = run_job(executor, JobSpec(
            runner=echo_runner, points=bw_sweep([1.0]).points()))
        assert ok.state == "done"


# ---------------------------------------------------------------------------
# LocalAsync-only durability features
# ---------------------------------------------------------------------------

class TestLocalAsyncDurability:
    def test_crashed_worker_is_respawned_and_variant_requeued(
            self, tmp_path):
        runner = functools.partial(crash_once_runner,
                                   flag_dir=str(tmp_path))
        with LocalAsyncExecutor(workers=2) as executor:
            job_id, status = run_job(executor, JobSpec(
                runner=runner, points=bw_sweep([1.0, 2.0, 4.0]).points()))
            assert status.state == "done"
            rows = executor.result(job_id)
        assert [row["bw_out"] for row in rows] == [1.0, 2.0, 4.0]
        assert not any("error" in row for row in rows)

    def test_crash_budget_exhausted_becomes_error_row(self):
        with LocalAsyncExecutor(workers=2,
                                max_task_retries=1) as executor:
            job_id, status = run_job(executor, JobSpec(
                runner=always_crash_runner,
                points=bw_sweep([1.0, 2.0]).points()))
            assert status.state == "done"
            rows = executor.result(job_id)
        for row in rows:
            assert row["error"] == ("WorkerCrashed: variant worker exited "
                                    "with code 43 (after 2 attempts)")

    def test_job_timeout_fails_job_but_executor_keeps_serving(self):
        with LocalAsyncExecutor(workers=1) as executor:
            _, status = run_job(executor, JobSpec(
                runner=slow_runner, points=bw_sweep([1.0, 2.0]).points(),
                timeout_s=0.1))
            assert status.state == "failed"
            assert status.error == \
                "JobTimeout: job exceeded its 0.1s budget"
            _, ok = run_job(executor, JobSpec(
                runner=echo_runner, points=bw_sweep([1.0]).points()))
            assert ok.state == "done"

    def test_cancel_running_job(self):
        with LocalAsyncExecutor(workers=1) as executor:
            job_id = executor.submit(JobSpec(
                runner=slow_runner,
                points=bw_sweep([1.0, 2.0, 4.0, 8.0]).points()))
            deadline = time.monotonic() + 30.0  # repro: noqa[PY002]
            while executor.poll(job_id).state == "queued":
                assert time.monotonic() < deadline  # repro: noqa[PY002]
                time.sleep(0.01)  # repro: noqa[PY002]
            assert executor.cancel(job_id) is True
            status = executor.wait(job_id, timeout=30.0)
            assert status.state == "cancelled"
            assert executor.cancel(job_id) is False
            with pytest.raises(ExecutorError, match="cancelled"):
                executor.result(job_id)

    def test_cancel_queued_job_never_runs(self):
        with LocalAsyncExecutor(workers=1) as executor:
            blocker = executor.submit(JobSpec(
                runner=slow_runner, points=bw_sweep([1.0, 2.0]).points()))
            queued = executor.submit(JobSpec(
                runner=echo_runner, points=bw_sweep([4.0]).points()))
            assert executor.cancel(queued) is True
            assert executor.wait(queued, timeout=60.0).state == "cancelled"
            assert executor.wait(blocker, timeout=60.0).state == "done"
