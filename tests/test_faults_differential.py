"""Differential harness: an empty fault plan is *exactly* no plan.

The zero-overhead-when-off contract: ``faults=None``, ``faults=
FaultPlan()`` (all-empty), and an on-disk empty plan file must all take
the seed code path — same model wiring, byte-identical sweep rows,
byte-identical Chrome traces against the PR-3 golden snapshot, and
unchanged cache keys.  The flip side is the cache-poisoning regression:
a *non*-empty plan must never be served a fault-free cached row (nor
vice versa).
"""

from __future__ import annotations

import json

from repro.commmodel.network import MultiNodeModel
from repro.core.experiment import Sweep
from repro.core.workbench import Workbench
from repro.faults import FaultPlan, LinkFault, TransportConfig
from repro.machines.presets import generic_multicomputer, t805_grid
from repro.observe import Tracer
from repro.parallel import ParallelSweepRunner, ResultCache
from repro.parallel.cache import result_key
from repro.tracegen import StochasticAppDescription

from .test_determinism import check_golden
from .test_faults import run_pingpong
from .test_observe import traced_pingpong


def empty_plan() -> FaultPlan:
    """An explicitly-constructed plan that injects nothing."""
    return FaultPlan(name="noop", seed=123,
                     link_faults=[LinkFault(0.0, 0.0)],
                     transport=TransportConfig(max_retries=9))


def lossy_plan() -> FaultPlan:
    # Retransmission is whole-message, so per-packet loss compounds:
    # stochastic messages here span up to ~13 packets, and 0.05 keeps
    # the per-attempt success around 25% — delivered with retries,
    # never (within ~1e-26) exhausting a 200-attempt budget.
    return FaultPlan(seed=3, link_faults=[LinkFault(drop_prob=0.05)],
                     transport=TransportConfig(timeout_cycles=50_000.0,
                                               backoff_factor=1.0,
                                               max_retries=200))


def stochastic_row(machine, faults=None) -> dict:
    """Sweep runner (module level: picklable, accepts ``faults=``)."""
    res = Workbench(machine, faults=faults).run_stochastic(
        StochasticAppDescription(), level="task", rounds=5, seed=42)
    return {"total_cycles": res.total_cycles,
            "mean_latency": res.message_latency.mean,
            "events": res.events_executed}


class TestEmptyPlanIsNoPlan:
    def test_model_builds_no_fault_machinery(self):
        machine = generic_multicomputer("mesh", (2, 2))
        for faults in (None, empty_plan(), FaultPlan()):
            model = MultiNodeModel(machine, faults=faults)
            assert model.fault_plan is None
            assert model.injector is None
            assert model.transport is None

    def test_empty_plan_run_is_bit_identical(self):
        _m1, r1 = run_pingpong(None)
        _m2, r2 = run_pingpong(empty_plan())
        assert r2.fault_summary is None
        assert r1.summary() == r2.summary()

    def test_empty_plan_matches_golden_chrome_trace(self):
        """The PR-3 golden pingpong trace, re-run under an empty plan.

        Byte-identical output proves the fault hooks cost nothing when
        off — not one extra trace record, not one reordered event.
        """
        import repro.apps as apps
        from repro.commmodel.message import reset_message_ids
        reset_message_ids()
        machine = generic_multicomputer("mesh", (2, 2))
        model = MultiNodeModel(machine, faults=empty_plan())
        tracer = Tracer()
        model.sim.attach_tracer(tracer)
        model.run(list(apps.pingpong_task_traces(
            model.n_nodes, size=256, repeats=2, b=model.n_nodes - 1)))
        check_golden("chrome_trace_pingpong", tracer.to_chrome())

    def test_empty_plan_trace_equals_no_plan_trace(self):
        _m1, tracer1, _r1 = traced_pingpong()
        doc1 = tracer1.to_chrome()
        from repro.commmodel.message import reset_message_ids
        import repro.apps as apps
        reset_message_ids()
        machine = generic_multicomputer("mesh", (2, 2))
        model = MultiNodeModel(machine, faults=FaultPlan())
        tracer2 = Tracer()
        model.sim.attach_tracer(tracer2)
        model.run(list(apps.pingpong_task_traces(
            model.n_nodes, size=256, repeats=2, b=model.n_nodes - 1)))
        assert json.dumps(doc1, sort_keys=True) == \
            json.dumps(tracer2.to_chrome(), sort_keys=True)

    def test_sweep_rows_identical_with_empty_plan(self):
        sweep = Sweep(t805_grid(2, 2))
        sweep.axis("bw", _set_bandwidth, [1, 2])
        rows_none = sweep.run(stochastic_row)
        rows_empty = sweep.run(stochastic_row, faults=empty_plan())
        assert json.dumps(rows_none, sort_keys=True) == \
            json.dumps(rows_empty, sort_keys=True)

    def test_cache_key_unchanged_for_empty_or_no_plan(self):
        machine = t805_grid(2, 2)
        legacy = result_key(machine, "w", version="v1")
        assert result_key(machine, "w", version="v1", faults=None) == legacy

    def test_scaled_zero_rung_is_the_fault_free_row(self):
        """Regression: a severity ladder's ``scaled(0)`` rung used to
        keep its windows, so the "baseline" rung ran with the injector
        and transport engaged and cached under a diverged key.  Now it
        normalizes to ``None``: same wiring, byte-identical rows, same
        cache key as a plain fault-free run."""
        from repro.faults import DownWindow, as_fault_plan
        base = lossy_plan()
        base.link_down = [DownWindow(0.0, 50_000.0)]   # windows too
        rung = base.scaled(0.0)
        assert as_fault_plan(rung) is None
        machine = generic_multicomputer("mesh", (2, 2))
        model = MultiNodeModel(machine, faults=rung)
        assert model.injector is None and model.transport is None
        sweep = Sweep(t805_grid(2, 2))
        sweep.axis("bw", _set_bandwidth, [1, 2])
        rows_none = sweep.run(stochastic_row)
        rows_rung = sweep.run(stochastic_row, faults=rung)
        assert json.dumps(rows_none, sort_keys=True) == \
            json.dumps(rows_rung, sort_keys=True)
        machine = t805_grid(2, 2)
        assert result_key(machine, "w", version="v1",
                          faults=as_fault_plan(rung)) == \
            result_key(machine, "w", version="v1")


def _set_bandwidth(machine, value):
    machine.network.link_bandwidth = value


class TestCacheKeySeparation:
    def test_plan_digest_extends_the_key(self):
        machine = t805_grid(2, 2)
        base = result_key(machine, "w", version="v1")
        faulty = result_key(machine, "w", version="v1", faults=lossy_plan())
        assert faulty != base
        # Different plan content -> different key; relabelling -> same.
        other = lossy_plan()
        other.link_faults[0].drop_prob = 0.4
        assert result_key(machine, "w", version="v1", faults=other) != faulty
        renamed = lossy_plan()
        renamed.name = "renamed"
        assert result_key(machine, "w", version="v1",
                          faults=renamed) == faulty

    def test_cached_fault_free_row_never_served_for_faulty_run(self, tmp_path):
        """Regression: before the key carried the plan digest, a faulty
        re-run of a cached sweep silently returned fault-free rows."""
        from repro.parallel import FaultedRunner
        cache = ResultCache(tmp_path)
        machine = t805_grid(2, 2)
        points = [({}, machine)]
        pool = ParallelSweepRunner(workers=1, cache=cache)
        clean = pool.run(stochastic_row, points, workload_id="w")
        assert cache.stats.stores == 1
        plan = lossy_plan()
        faulty = pool.run(FaultedRunner(stochastic_row, plan), points,
                          workload_id="w", faults=plan)
        # Second run was a cache MISS and simulated for real...
        assert cache.stats.hits == 0 and cache.stats.stores == 2
        # ...and its row shows the faults the cached row cannot have.
        assert faulty[0]["total_cycles"] > clean[0]["total_cycles"]

    def test_sweep_level_separation(self, tmp_path):
        sweep = Sweep(t805_grid(2, 2))
        sweep.axis("bw", _set_bandwidth, [1, 2])
        cache = ResultCache(tmp_path)
        clean = sweep.run(stochastic_row, cache=cache, workload_id="w")
        faulty = sweep.run(stochastic_row, cache=cache, workload_id="w",
                           faults=lossy_plan())
        assert clean != faulty
        # Re-running each variant hits its own cache entry.
        assert sweep.run(stochastic_row, cache=cache,
                         workload_id="w") == clean
        assert sweep.run(stochastic_row, cache=cache, workload_id="w",
                         faults=lossy_plan()) == faulty

    def test_plan_sequence_becomes_severity_axis(self):
        base = lossy_plan()
        base.name = "lossy"
        sweep = Sweep(t805_grid(2, 2))
        sweep.axis("bw", _set_bandwidth, [1])
        rows = sweep.run(stochastic_row,
                         faults=[base.scaled(0.0), base])
        assert [row["faults"] for row in rows] == ["plan0", "lossy"]
        assert rows[1]["total_cycles"] > rows[0]["total_cycles"]
