"""SMP clusters over the message network (Section 4.3)."""

from __future__ import annotations

import pytest

from repro.core.config import (
    CacheConfig,
    CacheLevelConfig,
    MachineConfig,
    NetworkConfig,
    NodeConfig,
    TopologyConfig,
)
from repro.operations import (
    ArithType,
    MemType,
    add,
    compute,
    ifetch,
    load,
    recv,
    send,
    store,
)
from repro.sharedmem import HybridArchitectureModel


def machine(n_nodes=2, n_cpus=2) -> MachineConfig:
    node = NodeConfig(
        n_cpus=n_cpus,
        cache_levels=[CacheLevelConfig(data=CacheConfig(
            size_bytes=1024, line_bytes=32, associativity=2))])
    return MachineConfig(
        name="cluster",
        node=node,
        network=NetworkConfig(
            topology=TopologyConfig(kind="ring", dims=(n_nodes,)))
    ).validate()


def comp_trace(k=50):
    ops = []
    for i in range(k):
        ops.append(ifetch(0x400000 + (i % 8) * 4))
        ops.append(load(MemType.FLOAT64, 0x1000 + (i % 16) * 8))
        ops.append(add(ArithType.DOUBLE))
    return ops


class TestCluster:
    def test_pure_computation(self):
        model = HybridArchitectureModel(machine())
        res = model.run_traces([[comp_trace(), comp_trace()],
                                [comp_trace(), comp_trace()]])
        assert res.total_cycles > 0
        assert len(res.smp_results) == 2
        for smp in res.smp_results:
            assert all(a.instructions > 0 for a in smp.activity)

    def test_inter_node_message_from_any_cpu(self):
        model = HybridArchitectureModel(machine())
        # CPU 1 of node 0 sends; CPU 0 of node 1 receives.
        streams = [
            [comp_trace(10), comp_trace(10) + [send(1024, 1)]],
            [[recv(0)] + comp_trace(10), comp_trace(10)],
        ]
        res = model.run_traces(streams)
        assert res.comm.messages_delivered == 1
        assert res.comm.message_latency.count == 1

    def test_intra_node_coherence_plus_network(self):
        """Both CPUs of node 0 ping-pong a cache line while node 0 also
        talks to node 1: one timeline carries both effects."""
        model = HybridArchitectureModel(machine())
        shared = 0x2000
        cpu0 = [store(MemType.INT64, shared)] * 20 + [send(256, 1)]
        cpu1 = [store(MemType.INT64, shared)] * 20
        streams = [[cpu0, cpu1], [[recv(0)], []]]
        res = model.run_traces(streams)
        smp0 = res.smp_results[0]
        assert smp0.coherence_summary["transactions"] > 0
        assert res.comm.messages_delivered == 1

    def test_compute_op_allowed_in_cluster_stream(self):
        model = HybridArchitectureModel(machine())
        res = model.run_traces([[[compute(500)], []], [[], []]])
        assert res.total_cycles == 500.0

    def test_wrong_shapes_rejected(self):
        model = HybridArchitectureModel(machine())
        with pytest.raises(ValueError, match="node entries"):
            model.run_traces([[[], []]])
        with pytest.raises(ValueError, match="CPU"):
            model.run_traces([[[]], [[], []]])

    def test_single_cpu_cluster_matches_network_semantics(self):
        m = machine(n_nodes=2, n_cpus=1)
        model = HybridArchitectureModel(m)
        res = model.run_traces([
            [[compute(100), send(512, 1)]],
            [[recv(0)]],
        ])
        assert res.comm.messages_delivered == 1
        assert res.total_cycles > 100
