"""Channel semantics: rendezvous, buffered, bounded, FIFO ordering."""

from __future__ import annotations

import pytest

from repro.pearl import Channel, ChannelClosedError, SimulationError


class TestUnboundedAsync:
    def test_send_never_blocks(self, sim):
        ch = Channel(sim)

        def sender():
            for i in range(5):
                yield ch.send(i)
            return sim.now
        p = sim.process(sender())
        sim.run()
        assert p.result == 0.0
        assert len(ch) == 5

    def test_receive_gets_fifo_order(self, sim):
        ch = Channel(sim)

        def sender():
            for i in range(3):
                yield ch.send(i)

        def receiver():
            got = []
            for _ in range(3):
                got.append((yield ch.receive()))
            return got

        sim.process(sender())
        p = sim.process(receiver())
        sim.run()
        assert p.result == [0, 1, 2]

    def test_receiver_blocks_until_send(self, sim):
        ch = Channel(sim)

        def receiver():
            msg = yield ch.receive()
            return (sim.now, msg)

        def sender():
            yield 12.0
            yield ch.send("late")

        p = sim.process(receiver())
        sim.process(sender())
        sim.run()
        assert p.result == (12.0, "late")

    def test_multiple_receivers_fifo(self, sim):
        ch = Channel(sim)
        got = []

        def receiver(tag):
            msg = yield ch.receive()
            got.append((tag, msg))

        sim.process(receiver("r0"))
        sim.process(receiver("r1"))

        def sender():
            yield 1.0
            yield ch.send("a")
            yield ch.send("b")

        sim.process(sender())
        sim.run()
        assert got == [("r0", "a"), ("r1", "b")]


class TestRendezvous:
    def test_sender_blocks_for_receiver(self, sim):
        ch = Channel(sim, capacity=0)
        times = {}

        def sender():
            yield ch.send("x")
            times["send_done"] = sim.now

        def receiver():
            yield 8.0
            msg = yield ch.receive()
            times["recv_done"] = (sim.now, msg)

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert times["send_done"] == 8.0
        assert times["recv_done"] == (8.0, "x")

    def test_receiver_blocks_for_sender(self, sim):
        ch = Channel(sim, capacity=0)

        def receiver():
            msg = yield ch.receive()
            return (sim.now, msg)

        def sender():
            yield 3.0
            yield ch.send("y")

        p = sim.process(receiver())
        sim.process(sender())
        sim.run()
        assert p.result == (3.0, "y")


class TestBounded:
    def test_send_blocks_when_full(self, sim):
        ch = Channel(sim, capacity=2)
        done = []

        def sender():
            for i in range(3):
                yield ch.send(i)
                done.append((i, sim.now))

        def receiver():
            yield 10.0
            yield ch.receive()

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert done[0] == (0, 0.0)
        assert done[1] == (1, 0.0)
        assert done[2] == (2, 10.0)   # third send waited for a drain

    def test_blocked_sender_message_preserves_order(self, sim):
        ch = Channel(sim, capacity=1)

        def sender():
            yield ch.send("first")
            yield ch.send("second")

        def receiver():
            yield 1.0
            a = yield ch.receive()
            b = yield ch.receive()
            return [a, b]

        sim.process(sender())
        p = sim.process(receiver())
        sim.run()
        assert p.result == ["first", "second"]


class TestMisc:
    def test_negative_capacity_rejected(self, sim):
        with pytest.raises(SimulationError):
            Channel(sim, capacity=-1)

    def test_try_receive(self, sim):
        ch = Channel(sim)
        ok, msg = ch.try_receive()
        assert not ok and msg is None

        def sender():
            yield ch.send(5)
        sim.process(sender())
        sim.run()
        ok, msg = ch.try_receive()
        assert ok and msg == 5

    def test_try_receive_meets_rendezvous_sender(self, sim):
        ch = Channel(sim, capacity=0)
        unblocked = []

        def sender():
            yield ch.send("z")
            unblocked.append(sim.now)

        sim.process(sender())
        sim.run()
        ok, msg = ch.try_receive()
        assert ok and msg == "z"
        sim.run()
        assert unblocked == [0.0]

    def test_send_on_closed_raises(self, sim):
        ch = Channel(sim)
        ch.close()
        with pytest.raises(ChannelClosedError):
            ch.send(1)

    def test_drain_after_close_then_error(self, sim):
        ch = Channel(sim)

        def sender():
            yield ch.send(1)
        sim.process(sender())
        sim.run()
        ch.close()
        ok, msg = ch.try_receive()
        assert ok and msg == 1
        with pytest.raises(ChannelClosedError):
            ch.receive()

    def test_counters(self, sim):
        ch = Channel(sim)

        def sender():
            yield ch.send(1)
            yield ch.send(2)

        def receiver():
            yield ch.receive()

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert ch.sent_count == 2
        assert ch.received_count == 1
        assert ch.max_buffered >= 1
