"""The FFT workload and the stochastic workload-class presets."""

from __future__ import annotations

import pytest

from repro import Workbench, generic_multicomputer
from repro.apps import ThreadedApplication, make_fft
from repro.operations import OpCode, validate_trace_set
from repro.tracegen import (
    WORKLOAD_CLASSES,
    StochasticGenerator,
    comm_bound_class,
    dense_linear_algebra_class,
    irregular_class,
    stencil_class,
)


class TestFFT:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_traces_valid(self, n):
        ts = ThreadedApplication(make_fft(points_per_node=8), n).record()
        validate_trace_set(ts)

    def test_exchange_count(self):
        """log2(P) stages, one exchange (send+recv) per node per stage."""
        n = 8
        ts = ThreadedApplication(make_fft(points_per_node=8), n).record()
        sends = sum(t.op_histogram().get(OpCode.SEND, 0) for t in ts)
        assert sends == n * 3       # log2(8) = 3 stages

    def test_partners_are_hypercube_neighbours(self):
        ts = ThreadedApplication(make_fft(points_per_node=8), 8).record()
        for t in ts:
            for op in t:
                if op.code is OpCode.SEND:
                    assert bin(t.node ^ op.peer).count("1") == 1

    def test_power_of_two_required(self):
        wb = Workbench(generic_multicomputer("ring", (3,)))
        with pytest.raises(Exception, match="power-of-two"):
            wb.run_hybrid(make_fft(points_per_node=8))
        with pytest.raises(ValueError):
            make_fft(points_per_node=12)

    def test_hypercube_beats_ring_for_fft(self):
        """Later butterfly stages are multi-hop on a ring but single-hop
        on the cube: the workbench quantifies the textbook claim."""
        fft = make_fft(points_per_node=32)
        cube = Workbench(generic_multicomputer("hypercube", (3,)))
        ring = Workbench(generic_multicomputer("ring", (8,)))
        t_cube = cube.run_hybrid(fft).total_cycles
        t_ring = ring.run_hybrid(fft).total_cycles
        assert t_cube < t_ring


class TestWorkloadClasses:
    @pytest.mark.parametrize("name", sorted(WORKLOAD_CLASSES))
    def test_presets_generate_valid_traces(self, name):
        desc = WORKLOAD_CLASSES[name]()
        gen = StochasticGenerator(desc, 4, seed=5)
        validate_trace_set(gen.generate_task_level(10))
        validate_trace_set(gen.generate_instruction_level(3000))

    def test_classes_differ_in_character(self):
        """The presets must actually distinguish the classes they name."""
        def mix_of(desc):
            gen = StochasticGenerator(desc, 1, seed=1)
            trace = gen.generate_instruction_level(6000)[0]
            hist = trace.op_histogram()
            total = sum(n for c, n in hist.items()
                        if c is not OpCode.IFETCH)
            return {c: n / total for c, n in hist.items()}

        stencil = mix_of(stencil_class())
        irregular = mix_of(irregular_class())
        # Irregular code branches far more than stencils.
        assert irregular.get(OpCode.BRANCH, 0) > \
            2 * stencil.get(OpCode.BRANCH, 0)
        dla = mix_of(dense_linear_algebra_class())
        assert dla.get(OpCode.MUL, 0) > 2 * irregular.get(OpCode.MUL, 0)

    def test_comm_bound_heavier_on_network(self):
        wb = Workbench(generic_multicomputer("mesh", (2, 2)))
        comm = wb.run_stochastic(comm_bound_class(), level="task",
                                 rounds=20, seed=2)
        compute_heavy = wb.run_stochastic(dense_linear_algebra_class(),
                                          level="task", rounds=20, seed=2)
        assert comm.parallel_efficiency() < \
            compute_heavy.parallel_efficiency()

    def test_locality_shows_in_cache_behaviour(self):
        """Stencil (sequential) hits caches far better than irregular
        (random over 8 MiB)."""
        from repro import powerpc601_node
        wb = Workbench(powerpc601_node())

        def l1_hit_rate(desc):
            gen = StochasticGenerator(desc, 1, seed=3)
            trace = gen.generate_instruction_level(20_000)[0]
            res = wb.run_single_node(trace)
            caches = res.memory_summary["caches"]
            l1 = next(v for k, v in caches.items() if "L1" in k)
            return l1["hit_rate"]

        assert l1_hit_rate(stencil_class()) > \
            l1_hit_rate(irregular_class()) + 0.05
