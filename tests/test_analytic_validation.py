"""Closed-form cross-checks: the simulators vs pencil-and-paper models.

Each test constructs a scenario simple enough to solve analytically and
checks the simulation lands on the formula exactly (deterministic DES)
or within a tight bound.  These are the strongest correctness tests the
suite has: they validate timing *composition*, not just plumbing.
"""

from __future__ import annotations

import pytest

from repro import Workbench, generic_multicomputer
from repro.core.config import (
    BusConfig,
    CacheConfig,
    CacheLevelConfig,
    CPUConfig,
    MachineConfig,
    MemoryConfig,
    NetworkConfig,
    NodeConfig,
    TopologyConfig,
)
from repro.commmodel import MultiNodeModel
from repro.operations import (
    ArithType,
    MemType,
    add,
    compute,
    load,
    recv,
    send,
)
from repro.sharedmem import SMPNodeModel


class TestNodeTiming:
    def test_pure_arithmetic_exact(self):
        """n identical adds cost exactly n * cost."""
        machine = generic_multicomputer("mesh", (1, 1))
        res = Workbench(machine).run_single_node(
            [add(ArithType.DOUBLE)] * 1000)
        per = machine.node.cpu.add_cycles[ArithType.DOUBLE]
        assert res.cycles == pytest.approx(1000 * per)

    def test_streaming_load_cost_formula(self):
        """Sequential walk: one miss per line, hits elsewhere.

        cycles = n*(issue + hit) + misses*(fill - hit)
        """
        line = 32
        node = NodeConfig(
            cpu=CPUConfig(load_issue_cycles=1.0),
            cache_levels=[CacheLevelConfig(data=CacheConfig(
                size_bytes=4096, line_bytes=line, associativity=4,
                hit_cycles=1.0))],
            bus=BusConfig(width_bytes=8, cycles_per_beat=1.0,
                          arbitration_cycles=1.0),
            memory=MemoryConfig(access_cycles=20.0, cycles_per_word=2.0,
                                word_bytes=8))
        machine = MachineConfig(name="x", node=node).validate()
        n = 256
        ops = [load(MemType.FLOAT64, i * 8) for i in range(n)]
        res = Workbench(machine).run_single_node(ops)
        misses = n * 8 // line
        fill = 1.0 + 4 * 1.0 + 20.0 + 3 * 2.0   # arb + 4 beats + dram
        expected = n * (1.0 + 1.0) + misses * fill
        assert res.cycles == pytest.approx(expected)


class TestNetworkTiming:
    def make_net(self, n=3, **net_kw) -> MultiNodeModel:
        defaults = dict(
            switching="store_and_forward", routing="dimension_order",
            link_bandwidth=4.0, link_latency=1.0, packet_bytes=10 ** 9,
            header_bytes=8, routing_cycles=2.0,
            send_overhead=50.0, recv_overhead=50.0)
        defaults.update(net_kw)
        cfg = NetworkConfig(topology=TopologyConfig(kind="mesh",
                                                    dims=(n, 1)),
                            **defaults)
        return MultiNodeModel(MachineConfig(name="net",
                                            network=cfg).validate())

    def test_end_to_end_send_formula(self):
        """sync send completion = overhead + hops*(rt + T + ll)."""
        net = self.make_net(3)
        size = 1000
        res = net.run([[send(size, 2)], [], [recv(0)]])
        per_hop = 2.0 + (size + 8) / 4.0 + 1.0
        expected_latency = 2 * per_hop
        assert res.message_latency.mean == pytest.approx(expected_latency)
        # Total time: sender overhead + latency + receiver overhead.
        assert res.total_cycles == pytest.approx(
            50.0 + expected_latency + 50.0)

    def test_pipelined_round_trips_add(self):
        """k ping-pongs cost exactly k times one ping-pong (no state
        leaks between rounds)."""
        def total(k):
            net = self.make_net(2, send_overhead=0.0, recv_overhead=0.0)
            a = [send(100, 1), recv(1)] * k
            b = [recv(0), send(100, 0)] * k
            return net.run([a, b]).total_cycles

        one = total(1)
        assert total(4) == pytest.approx(4 * one)

    def test_compute_overlap_with_async_send(self):
        """asend then compute: total = overhead + max(compute, delivery)."""
        from repro.operations import asend
        net = self.make_net(2, send_overhead=10.0, recv_overhead=0.0)
        size = 4000
        res = net.run([
            [asend(size, 1), compute(100_000.0)],
            [recv(0)],
        ])
        delivery = 2.0 + (size + 8) / 4.0 + 1.0
        assert res.total_cycles == pytest.approx(
            10.0 + max(100_000.0, delivery))


class TestBusContention:
    def test_two_cpus_serialize_exactly(self):
        """Two CPUs issuing simultaneous misses: the second waits for
        the first's full bus transaction."""
        cfg = NodeConfig(
            n_cpus=2,
            cache_levels=[CacheLevelConfig(data=CacheConfig(
                size_bytes=512, line_bytes=32, associativity=2))],
            bus=BusConfig(width_bytes=8, cycles_per_beat=1.0,
                          arbitration_cycles=1.0, snoop_cycles=1.0),
            memory=MemoryConfig(access_cycles=20.0, cycles_per_word=2.0,
                                word_bytes=8))
        smp = SMPNodeModel(cfg)
        res = smp.run_traces([[load(MemType.INT64, 0x1000)],
                              [load(MemType.INT64, 0x9000)]])
        # One transaction: issue(1) then arb+snoop(2) + fill(4 beats +
        # 20 + 3*2 dram) + transfer-to-cache... composed cost:
        txn = 1.0 + 1.0 + 4 * 1.0 + (20.0 + 3 * 2.0)
        first = 1.0 + txn
        second = 1.0 + 2 * txn     # waited for the first
        assert res.activity[0].finish_time == pytest.approx(first)
        assert res.activity[1].finish_time == pytest.approx(second)

    def test_utilization_accounting_consistent(self):
        """Resource time-integral equals per-CPU stall bookkeeping."""
        from repro import smp_node
        machine = smp_node(4)
        wb = Workbench(machine)
        traces = [[load(MemType.INT64, 0x10000 * (c + 1) + i * 64)
                   for i in range(50)] for c in range(4)]
        res = wb.run_smp(traces)
        assert res.bus_summary["busy_cycles"] <= res.total_cycles * 1.001


class TestLoadBalanceLaw:
    def test_makespan_is_max_of_node_times(self):
        """Independent nodes: total time = slowest node's work."""
        wb = Workbench(generic_multicomputer("mesh", (2, 2)))
        res = wb.run_comm_only([
            [compute(1000.0)], [compute(9000.0)],
            [compute(500.0)], [compute(3000.0)]])
        assert res.total_cycles == pytest.approx(9000.0)
        assert res.parallel_efficiency() == pytest.approx(
            (1000 + 9000 + 500 + 3000) / (4 * 9000))

    def test_pipeline_throughput_law(self):
        """Steady-state pipeline: time ~ fill + items * bottleneck."""
        from repro.apps import pipeline_task_traces
        wb = Workbench(generic_multicomputer("mesh", (4, 1)))
        bottleneck = 10_000.0
        items = 12
        traces = pipeline_task_traces(
            4, items=items, item_bytes=64,
            stage_cycles=[1000, bottleneck, 1000, 1000])
        res = wb.run_comm_only(traces)
        lower = items * bottleneck
        assert lower < res.total_cycles < lower * 1.4