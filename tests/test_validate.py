"""Trace validation: structural checks and communication matching."""

from __future__ import annotations

import pytest

from repro.operations import (MemType,
                              Operation,
                              OpCode,
                              Trace,
                              TraceSet,
                              ValidationError,
                              arecv,
                              asend,
                              communication_matrix,
                              compute,
                              recv,
                              send,
                              validate_trace,
                              validate_trace_set)


class TestValidateTrace:
    def test_valid_trace_passes(self):
        validate_trace(Trace(0, [send(64, 1), recv(1), compute(10)]),
                       n_nodes=2)

    def test_self_communication_rejected(self):
        with pytest.raises(ValidationError, match="self-communication"):
            validate_trace(Trace(0, [send(64, 0)]), n_nodes=2)

    def test_peer_out_of_range(self):
        with pytest.raises(ValidationError, match="out of range"):
            validate_trace(Trace(0, [recv(5)]), n_nodes=2)

    def test_negative_peer(self):
        with pytest.raises(ValidationError, match="out of range"):
            validate_trace(Trace(0, [recv(-1)]))

    def test_negative_address(self):
        bad = Operation(OpCode.LOAD, int(MemType.INT32), -8)
        with pytest.raises(ValidationError, match="negative address"):
            validate_trace(Trace(0, [bad]))

    def test_no_n_nodes_skips_range_check(self):
        validate_trace(Trace(0, [send(64, 99)]))   # range unknown: OK


class TestValidateTraceSet:
    def test_matched_set_passes(self):
        ts = TraceSet.from_lists([
            [send(64, 1)],
            [recv(0), asend(32, 0)],
        ])
        # node 0 must also receive node 1's asend for matching:
        with pytest.raises(ValidationError):
            validate_trace_set(ts)
        ts = TraceSet.from_lists([
            [send(64, 1), arecv(1)],
            [recv(0), asend(32, 0)],
        ])
        validate_trace_set(ts)

    def test_unmatched_send_detected(self):
        ts = TraceSet.from_lists([[send(64, 1)], []])
        with pytest.raises(ValidationError, match="unmatched"):
            validate_trace_set(ts)

    def test_unmatched_recv_detected(self):
        ts = TraceSet.from_lists([[], [recv(0)]])
        with pytest.raises(ValidationError, match="unmatched"):
            validate_trace_set(ts)

    def test_check_matched_false_skips(self):
        ts = TraceSet.from_lists([[send(64, 1)], []])
        validate_trace_set(ts, check_matched=False)


class TestCommunicationMatrix:
    def test_counts(self):
        ts = TraceSet.from_lists([
            [send(64, 1), send(64, 1), recv(1)],
            [recv(0), recv(0), send(8, 0)],
        ])
        sends, recvs = communication_matrix(ts)
        assert sends[0][1] == 2
        assert recvs[0][1] == 2
        assert sends[1][0] == 1
        assert recvs[1][0] == 1
        assert sends[0][0] == 0
