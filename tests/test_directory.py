"""Directory-based coherence and the crossbar node fabric."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import (
    CacheConfig,
    CacheLevelConfig,
    ConfigError,
    NodeConfig,
)
from repro.compmodel import LineState
from repro.operations import MemType, load, store
from repro.sharedmem import SMPNodeModel


def make_smp(n_cpus=2, protocol="mesi", fabric="bus",
             lookup=2.0) -> SMPNodeModel:
    cfg = NodeConfig(
        n_cpus=n_cpus,
        coherence=protocol,
        coherence_style="directory",
        directory_lookup_cycles=lookup,
        fabric=fabric,
        cache_levels=[CacheLevelConfig(data=CacheConfig(
            size_bytes=512, line_bytes=32, associativity=2))])
    return SMPNodeModel(cfg)


L = lambda a: load(MemType.INT64, a)
S = lambda a: store(MemType.INT64, a)


class TestDirectoryProtocol:
    def test_first_read_exclusive_under_mesi(self):
        smp = make_smp()
        smp.run_traces([[L(0x100)], []])
        assert smp.dcaches[0].probe(0x100) is LineState.EXCLUSIVE
        assert smp.coherence.sharers_of(0x100) == {0}

    def test_msi_loads_shared(self):
        smp = make_smp(protocol="msi")
        smp.run_traces([[L(0x100)], []])
        assert smp.dcaches[0].probe(0x100) is LineState.SHARED

    def test_sharer_set_tracks_readers(self):
        smp = make_smp(n_cpus=3)
        smp.run_traces([[L(0x100)], [L(0x100)], [L(0x100)]])
        assert smp.coherence.sharers_of(0x100) == {0, 1, 2}

    def test_write_invalidates_only_sharers(self):
        smp = make_smp(n_cpus=4)
        # CPUs 0,1 share the line; CPU 2 writes it; CPU 3 never touches it.
        smp.run_traces([[L(0x100)], [L(0x100)], [S(0x100)], [L(0x900)]])
        stats = smp.coherence.stats
        # Exactly the two actual sharers received invalidations.
        assert stats.invalidations_sent == 2
        assert smp.coherence.sharers_of(0x100) == {2}
        assert smp.dcaches[2].probe(0x100) is LineState.MODIFIED

    def test_dirty_owner_fetch(self):
        smp = make_smp()
        smp.run_traces([[S(0x100)], [L(0x100)]])
        assert smp.coherence.stats.owner_fetches >= 1
        assert smp.dcaches[0].probe(0x100) is LineState.SHARED
        assert smp.dcaches[1].probe(0x100) is LineState.SHARED
        assert smp.coherence.sharers_of(0x100) == {0, 1}

    def test_silent_e_to_m_records_ownership(self):
        smp = make_smp()
        smp.run_traces([[L(0x100), S(0x100)], []])
        # One directory read, no upgrade (MESI silent transition).
        assert smp.coherence.stats.reads == 1
        assert smp.coherence.stats.upgrades == 0
        assert smp.coherence._dir[
            smp.coherence._line(0x100)].dirty_owner == 0

    def test_eviction_notice_cleans_sharer_map(self):
        smp = make_smp()
        # 2-way sets: three same-set lines evict the first.
        smp.run_traces([[L(0x000), L(0x100), L(0x200)], []])
        assert smp.coherence.stats.eviction_notices >= 1
        assert smp.coherence.sharers_of(0x000) == set()

    def test_private_data_no_invalidations(self):
        smp = make_smp(n_cpus=4)
        traces = [[L(0x1000 * (c + 1)), S(0x1000 * (c + 1))]
                  for c in range(4)]
        smp.run_traces(traces)
        assert smp.coherence.stats.invalidations_sent == 0


class TestDirectoryInvariants:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 7), st.booleans()),
        min_size=1, max_size=100))
    def test_sharer_map_matches_caches(self, accesses):
        """The directory's sharer set equals the caches' residency."""
        smp = make_smp(n_cpus=3)
        traces = [[], [], []]
        for cpu, line, is_write in accesses:
            addr = 0x1000 + line * 32
            traces[cpu].append(S(addr) if is_write else L(addr))
        smp.run_traces(traces)
        for line_idx in range(8):
            addr = 0x1000 + line_idx * 32
            holders = {c for c in range(3)
                       if smp.dcaches[c].probe(addr).is_valid}
            assert smp.coherence.sharers_of(addr) == holders

    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 7), st.booleans()),
        min_size=1, max_size=100))
    def test_single_writer(self, accesses):
        smp = make_smp(n_cpus=3)
        traces = [[], [], []]
        for cpu, line, is_write in accesses:
            addr = 0x1000 + line * 32
            traces[cpu].append(S(addr) if is_write else L(addr))
        smp.run_traces(traces)
        for line_idx in range(8):
            addr = 0x1000 + line_idx * 32
            states = [c.probe(addr) for c in smp.dcaches]
            exclusive = [s for s in states
                         if s in (LineState.MODIFIED, LineState.EXCLUSIVE)]
            if exclusive:
                assert len(exclusive) == 1
                assert sum(1 for s in states if s.is_valid) == 1


class TestCrossbarFabric:
    def test_crossbar_overlaps_disjoint_traffic(self):
        """Independent per-CPU misses overlap on the crossbar but
        serialize on the bus."""
        def runtime(fabric):
            smp = make_smp(n_cpus=4, fabric=fabric)
            traces = [[L(0x10000 * (c + 1) + i * 32) for i in range(12)]
                      for c in range(4)]
            return smp.run_traces(traces).total_cycles

        assert runtime("crossbar") < runtime("bus")

    def test_directory_port_still_serializes(self):
        """Even on the crossbar, directory lookups are one at a time:
        4 CPUs missing the same moment take longer than 1."""
        def runtime(n_busy):
            smp = make_smp(n_cpus=4, fabric="crossbar")
            traces = [[L(0x10000 * (c + 1))] if c < n_busy else []
                      for c in range(4)]
            return smp.run_traces(traces).total_cycles

        assert runtime(4) > runtime(1)

    def test_snoopy_rejects_crossbar(self):
        cfg = NodeConfig(
            n_cpus=2, coherence_style="snoopy", fabric="crossbar",
            cache_levels=[CacheLevelConfig(data=CacheConfig())])
        with pytest.raises(ConfigError, match="broadcast"):
            cfg.validate()


class TestStyleComparison:
    def test_private_writes_cheaper_than_snoopy_broadcast_counts(self):
        """Directory sends zero invalidations for unshared data; snoopy
        still occupies the bus per transaction (counts comparable), but
        the directory's invalidation count is exactly zero."""
        directory = make_smp(n_cpus=4)
        directory.run_traces([[L(0x1000 * (c + 1)), S(0x1000 * (c + 1))]
                              for c in range(4)])
        assert directory.coherence.stats.invalidations_sent == 0

    def test_lookup_latency_visible(self):
        fast = make_smp(lookup=0.0)
        slow = make_smp(lookup=50.0)
        trace = [L(0x1000 + i * 32) for i in range(10)]
        t_fast = fast.run_traces([trace, []]).total_cycles
        t_slow = slow.run_traces([trace, []]).total_cycles
        assert t_slow == pytest.approx(t_fast + 10 * 50.0)

    def test_config_round_trip_with_new_fields(self):
        from repro.core.config import MachineConfig
        from repro import smp_node
        m = smp_node(4)
        m.node.coherence_style = "directory"
        m.node.fabric = "crossbar"
        m.node.directory_lookup_cycles = 7.5
        again = MachineConfig.from_dict(m.to_dict())
        assert again.node.coherence_style == "directory"
        assert again.node.fabric == "crossbar"
        assert again.node.directory_lookup_cycles == 7.5
