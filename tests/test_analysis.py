"""Analysis tools: slowdown, timelines, reports, statistics."""

from __future__ import annotations

import io

import pytest

from repro import Workbench, generic_multicomputer
from repro.analysis import (
    SlowdownMeter,
    TimelineRecorder,
    comm_report,
    format_table,
    geometric_mean,
    histogram,
    node_report,
    percentiles,
    render_gantt,
    smp_report,
    speedup_table,
)
from repro.apps import make_pingpong
from repro.operations import MemType, add, ifetch, load
from repro.pearl import Simulator, TallyMonitor


class TestSlowdown:
    def test_measure_math(self):
        meter = SlowdownMeter(host_clock_hz=1e9)

        class FakeResult:
            total_cycles = 1000.0

        m = meter.measure("fake", 4, lambda: FakeResult())
        assert m.target_cycles == 1000.0
        assert m.n_processors == 4
        assert m.slowdown == m.host_cycles / 1000.0
        assert m.slowdown_per_processor == pytest.approx(m.slowdown / 4)
        assert m.target_cycles_per_host_second > 0

    def test_custom_extractor(self):
        meter = SlowdownMeter()
        m = meter.measure("dict", 1, lambda: {"cycles": 5.0},
                          target_cycles_of=lambda r: r["cycles"])
        assert m.target_cycles == 5.0

    def test_format(self):
        meter = SlowdownMeter()
        meter.measure("w", 2, lambda: type("R", (), {"total_cycles": 10.0})())
        out = meter.format()
        assert "w" in out and "slowdown/proc" in out

    def test_real_simulation(self):
        meter = SlowdownMeter()
        wb = Workbench(generic_multicomputer("mesh", (2, 2)))
        m = meter.measure(
            "pingpong", 4,
            lambda: wb.run_hybrid(make_pingpong(size=512, repeats=2)))
        assert m.target_cycles > 0
        assert m.host_seconds > 0


class TestTimeline:
    def build(self):
        sim = Simulator()
        rec = TimelineRecorder(sim)

        def node(name, pattern):
            for state, dur in pattern:
                rec.mark(name, state)
                yield dur

        sim.process(node("n0", [("compute", 10), ("send", 5),
                                ("compute", 5)]))
        sim.process(node("n1", [("idle", 8), ("recv", 4), ("compute", 8)]))
        sim.run()
        rec.finish()
        return rec

    def test_intervals_and_totals(self):
        rec = self.build()
        totals = rec.state_totals("n0")
        assert totals["compute"] == pytest.approx(15.0)
        assert totals["send"] == pytest.approx(5.0)

    def test_entities_complete(self):
        rec = self.build()
        assert sorted(rec.entities()) == ["n0", "n1"]

    def test_csv_export(self):
        rec = self.build()
        buf = io.StringIO()
        rec.to_csv(buf)
        lines = buf.getvalue().strip().splitlines()
        assert lines[0] == "entity,state,start,end"
        assert len(lines) == 1 + len(rec.intervals)

    def test_gantt_renders(self):
        rec = self.build()
        text = render_gantt(rec, width=20)
        assert "n0" in text and "n1" in text
        rows = [l for l in text.splitlines() if l.startswith("n0")]
        assert "#" in rows[0]

    def test_empty_gantt(self):
        sim = Simulator()
        rec = TimelineRecorder(sim)
        assert "empty" in render_gantt(rec)

    def test_runtime_observer(self):
        sim = Simulator()
        rec = TimelineRecorder(sim)
        seen = []
        rec.subscribe(lambda t, e, s: seen.append((t, e, s)))
        rec.mark("x", "compute")
        assert seen == [(0.0, "x", "compute")]


class TestReports:
    def test_format_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}]
        out = format_table(rows, title="t")
        assert "t" in out and "a" in out and "10" in out

    def test_format_empty(self):
        assert "(no rows)" in format_table([])

    def test_comm_report(self):
        wb = Workbench(generic_multicomputer("mesh", (2, 2)))
        res = wb.run_hybrid(make_pingpong(size=512, repeats=1))
        out = comm_report(res.comm)
        assert "per-node activity" in out
        assert "messages" in out

    def test_node_report(self):
        wb = Workbench(generic_multicomputer("mesh", (2, 2)))
        res = wb.run_single_node([ifetch(0x400000),
                                  load(MemType.FLOAT64, 0), add()])
        out = node_report(res)
        assert "CPI" in out and "cache" in out

    def test_smp_report(self):
        from repro import smp_node
        from repro.operations import store, MemType as MT
        wb = Workbench(smp_node(2))
        res = wb.run_smp([[store(MT.INT64, 0x100)],
                          [store(MT.INT64, 0x100)]])
        out = smp_report(res)
        assert "coherence" in out and "per-CPU" in out


class TestStats:
    def test_histogram_and_percentiles(self):
        m = TallyMonitor(keep_samples=True)
        for v in range(100):
            m.record(float(v))
        h = histogram(m, bins=10)
        assert len(h) == 10
        assert sum(c for _, _, c in h) == 100
        p = percentiles(m, (50, 90))
        assert p[50] == pytest.approx(49.5)

    def test_histogram_requires_samples(self):
        with pytest.raises(ValueError):
            histogram(TallyMonitor())

    def test_empty_percentiles(self):
        assert percentiles(TallyMonitor(keep_samples=True)) == {
            50: 0.0, 90: 0.0, 99: 0.0}

    def test_speedup_table(self):
        rows = speedup_table({1: 100.0, 2: 60.0, 4: 40.0})
        assert rows[0]["speedup"] == pytest.approx(1.0)
        assert rows[1]["speedup"] == pytest.approx(100 / 60)
        assert rows[2]["efficiency"] == pytest.approx(100 / 40 / 4)
        assert speedup_table({}) == []

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([5.0]) == pytest.approx(5.0)
