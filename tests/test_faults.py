"""Fault injection: plans, injector, reliable transport, metamorphics.

The companion differential harness (``test_faults_differential.py``)
proves the *absence* of faults changes nothing; this suite proves their
*presence* behaves as specified: deterministic per-link fault streams,
counted retransmissions, degraded-routing fallback, typed delivery
failure — plus the metamorphic properties (same seed ⇒ identical run,
higher drop probability ⇒ never fewer retransmissions).
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import pingpong_task_traces
from repro.commmodel.message import Message, reset_message_ids
from repro.commmodel.network import MultiNodeModel
from repro.core.config import ConfigError
from repro.faults import (
    DeliveryFailed,
    DownWindow,
    FaultInjector,
    FaultPlan,
    LinkFault,
    NodeWindow,
    TransportConfig,
    as_fault_plan,
)
from repro.machines.presets import generic_multicomputer
from repro.parallel.runner import _mp_context
from repro.pearl import Simulator
from repro.topology import mesh


# ---------------------------------------------------------------------------
# Shared recipes (module level: they also run inside forked workers)
# ---------------------------------------------------------------------------

def drop_plan(p: float = 0.2, *, seed: int = 11, corrupt: float = 0.0,
              max_retries: int = 200, timeout: float = 50_000.0,
              backoff: float = 1.0) -> FaultPlan:
    """A uniform drop plan with a retry budget generous enough that
    pingpong always completes (the metamorphic tests depend on it)."""
    return FaultPlan(
        seed=seed,
        link_faults=[LinkFault(drop_prob=p, corrupt_prob=corrupt)],
        transport=TransportConfig(timeout_cycles=timeout,
                                  backoff_factor=backoff,
                                  max_retries=max_retries))


def run_pingpong(plan, *, b: int = 1, size: int = 64, repeats: int = 2):
    """Deterministic faulted pingpong on the 2x2 mesh.

    ``b=1`` keeps the 0<->1 exchange on a single link each way, which
    the monotonicity property needs (every attempt consumes the same
    number of RNG draws from the same per-link streams).
    """
    reset_message_ids()
    machine = generic_multicomputer("mesh", (2, 2))
    model = MultiNodeModel(machine, faults=plan)
    result = model.run(list(pingpong_task_traces(
        model.n_nodes, size=size, repeats=repeats, b=b)))
    return model, result


def faulted_metrics() -> dict:
    """Fault counters of one fixed faulted run (cross-process identity)."""
    model, result = run_pingpong(drop_plan(0.4, seed=0), repeats=3)
    return {
        "summary": result.fault_summary,
        "log": model.transport.delivery_log,
        "cycles": result.total_cycles,
    }


def _one_packet(src: int = 0, dst: int = 1):
    msg = Message(src, dst, 16, synchronous=False)
    return msg.split(64, 4)[0]


# ---------------------------------------------------------------------------
# FaultPlan: validation, serialization, digest
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_roundtrip_dict_and_json(self):
        plan = FaultPlan(
            name="demo", seed=3,
            link_faults=[LinkFault(0.1, 0.05, src=0, dst=1)],
            link_down=[DownWindow(10.0, 20.0, src=2)],
            nic_stalls=[NodeWindow(0.0, 5.0, node=1)],
            node_pauses=[NodeWindow(1.0, 2.0)],
            transport=TransportConfig(timeout_cycles=99.0, max_retries=7))
        again = FaultPlan.from_dict(plan.to_dict())
        assert again == plan
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_save_load(self, tmp_path):
        plan = drop_plan(0.25)
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan
        # The file is plain JSON, editable by hand.
        assert json.loads(path.read_text())["seed"] == plan.seed

    def test_load_missing_file_raises_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            FaultPlan.load(tmp_path / "nope.json")

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="unknown fault-plan"):
            FaultPlan.from_dict({"seed": 1, "links": []})

    @pytest.mark.parametrize("bad, match", [
        (FaultPlan(link_faults=[LinkFault(drop_prob=1.5)]), "not in"),
        (FaultPlan(link_faults=[LinkFault(corrupt_prob=-0.1)]), "not in"),
        (FaultPlan(link_faults=[LinkFault(0.7, 0.6)]), "exceeds"),
        (FaultPlan(link_down=[DownWindow(5.0, 1.0)]), "interval"),
        (FaultPlan(nic_stalls=[NodeWindow(-1.0, 1.0)]), "interval"),
        (FaultPlan(transport=TransportConfig(timeout_cycles=0.0)),
         "timeout_cycles"),
        (FaultPlan(transport=TransportConfig(backoff_factor=0.5)),
         "backoff_factor"),
        (FaultPlan(transport=TransportConfig(max_retries=-1)),
         "max_retries"),
    ])
    def test_validate_rejects_bad_plans(self, bad, match):
        with pytest.raises(ConfigError, match=match):
            bad.validate()

    def test_is_empty(self):
        assert FaultPlan().is_empty()
        # Zero-probability rules and zero-width windows inject nothing.
        assert FaultPlan(link_faults=[LinkFault(0.0, 0.0)],
                         link_down=[DownWindow(5.0, 5.0)]).is_empty()
        assert not FaultPlan(link_faults=[LinkFault(0.1)]).is_empty()
        assert not FaultPlan(link_down=[DownWindow(0.0, 1.0)]).is_empty()

    def test_digest_excludes_name_tracks_content(self):
        a = drop_plan(0.2)
        b = drop_plan(0.2)
        b.name = "relabelled"
        assert a.digest() == b.digest()
        assert a.digest() != drop_plan(0.21).digest()
        assert a.digest() != drop_plan(0.2, seed=12).digest()

    def test_scaled(self):
        plan = FaultPlan(name="base",
                         link_faults=[LinkFault(0.3, 0.4)])
        double = plan.scaled(2.0)
        assert double.link_faults[0].drop_prob == pytest.approx(0.6)
        # Joint clamp: corrupt takes at most the remainder (1 - 0.6),
        # not its independently-clamped 0.8 — the pair must stay a
        # valid one-draw outcome partition.
        assert double.link_faults[0].corrupt_prob == pytest.approx(0.4)
        double.validate()
        assert plan.scaled(4.0).link_faults[0].drop_prob == 1.0  # clamped
        assert plan.scaled(4.0).link_faults[0].corrupt_prob == 0.0
        assert plan.link_faults[0].drop_prob == 0.3       # original intact
        assert double.name == "basex2"
        with pytest.raises(ConfigError):
            plan.scaled(-1.0)

    def test_scaled_joint_clamp_boundary(self):
        """Regression: independent clamping let drop + corrupt exceed
        1.0 (e.g. (0.3, 0.4) x 2 -> 0.6 + 0.8 = 1.4), which
        ``validate`` rejects and which would corrupt the one-uniform-
        draw outcome partition.  The joint clamp saturates drop first
        and keeps every rung valid and drop-monotone in the factor."""
        plan = FaultPlan(link_faults=[LinkFault(0.3, 0.4)])
        factors = [0.0, 0.5, 1.0, 10 / 7, 2.0, 7 / 3, 10 / 3, 4.0, 100.0]
        prev_drop = -1.0
        for f in factors:
            rung = plan.scaled(f)
            rung.validate()                      # sum <= 1.0 always
            rule = (rung.link_faults or [LinkFault()])[0]
            assert rule.drop_prob + rule.corrupt_prob <= 1.0 + 1e-12
            assert rule.drop_prob >= prev_drop   # monotone in factor
            prev_drop = rule.drop_prob
        # Exactly at the boundary factor the pair sums to 1.0.
        edge = plan.scaled(10 / 7).link_faults[0]
        assert edge.drop_prob + edge.corrupt_prob == pytest.approx(1.0)

    def test_scaled_zero_clears_windows(self):
        """Regression: ``scaled(0)`` used to zero the probabilities but
        keep down/stall/pause windows active, so the "baseline" rung of
        a severity ladder still injected faults and its cache key
        diverged from the fault-free row."""
        plan = FaultPlan(
            seed=5,
            link_faults=[LinkFault(0.2, 0.1)],
            link_down=[DownWindow(0.0, 1_000.0)],
            nic_stalls=[NodeWindow(0.0, 500.0, node=1)],
            node_pauses=[NodeWindow(10.0, 20.0)])
        rung = plan.scaled(0)
        assert rung.is_empty()
        assert as_fault_plan(rung) is None
        # Non-fault content survives: seed and transport budget.
        assert rung.seed == plan.seed
        assert rung.transport == plan.transport
        # The original plan is untouched.
        assert plan.link_down and plan.nic_stalls and plan.node_pauses

    def test_as_fault_plan_forms(self, tmp_path):
        assert as_fault_plan(None) is None
        assert as_fault_plan(FaultPlan()) is None          # empty -> None
        plan = drop_plan(0.2)
        assert as_fault_plan(plan) is plan
        assert as_fault_plan(plan.to_dict()) == plan
        path = tmp_path / "p.json"
        plan.save(path)
        assert as_fault_plan(str(path)) == plan
        assert as_fault_plan(path) == plan
        with pytest.raises(ConfigError, match="cannot interpret"):
            as_fault_plan(42)

    def test_as_fault_plan_validates(self):
        with pytest.raises(ConfigError):
            as_fault_plan(FaultPlan(link_faults=[LinkFault(2.0)]))


# ---------------------------------------------------------------------------
# FaultInjector unit behaviour
# ---------------------------------------------------------------------------

def make_injector(plan: FaultPlan) -> FaultInjector:
    return FaultInjector(plan, mesh(2, 2), Simulator())


class TestInjector:
    def test_crossing_stream_is_deterministic(self):
        plan = drop_plan(0.5, seed=9)
        verdicts = []
        for _ in range(2):
            inj = make_injector(plan)
            pkt = _one_packet()
            verdicts.append([inj.crossing(0, 1, pkt) for _ in range(64)])
        assert verdicts[0] == verdicts[1]
        assert "drop" in verdicts[0] and "ok" in verdicts[0]

    def test_streams_are_per_link(self):
        inj = make_injector(drop_plan(0.5, seed=9))
        pkt = _one_packet()
        a = [inj.crossing(0, 1, pkt) for _ in range(32)]
        b = [inj.crossing(1, 0, pkt) for _ in range(32)]
        assert a != b  # independent streams, not one shared sequence

    def test_zero_probability_links_consume_no_draws(self):
        plan = FaultPlan(seed=1,
                         link_faults=[LinkFault(0.9, src=0, dst=1)],
                         link_down=[DownWindow(0.0, 1.0)])
        inj = make_injector(plan)
        pkt = _one_packet(2, 3)
        assert all(inj.crossing(2, 3, pkt) == "ok" for _ in range(16))
        assert (2, 3) not in inj._rngs     # no RNG was ever built
        assert inj.dropped == 0

    def test_last_matching_rule_wins(self):
        plan = FaultPlan(link_faults=[
            LinkFault(drop_prob=1.0),                 # wildcard: always drop
            LinkFault(drop_prob=0.0, src=0, dst=1),   # override one link
        ])
        inj = make_injector(plan)
        assert inj._link_probs(0, 1) == (0.0, 0.0)
        assert inj._link_probs(1, 0) == (1.0, 0.0)

    def test_crossing_corrupt_marks_message(self):
        plan = FaultPlan(seed=1,
                         link_faults=[LinkFault(0.0, 1.0)])  # always corrupt
        inj = make_injector(plan)
        pkt = _one_packet()
        assert inj.crossing(0, 1, pkt) == "corrupt"
        assert pkt.message.corrupted
        assert inj.corrupted == 1 and inj.dropped == 0

    def test_down_delay_windows(self):
        plan = FaultPlan(link_down=[DownWindow(100.0, 200.0, src=0, dst=1),
                                    DownWindow(150.0, 300.0, src=0, dst=1)])
        inj = make_injector(plan)
        assert inj.down_delay(0, 1, 50.0) == 0.0
        assert inj.down_delay(0, 1, 120.0) == 80.0    # second not active yet
        assert inj.down_delay(0, 1, 160.0) == 140.0   # overlap: max end wins
        assert inj.down_delay(0, 1, 250.0) == 50.0
        assert inj.down_delay(0, 1, 300.0) == 0.0
        assert inj.down_delay(1, 0, 120.0) == 0.0     # other link is up

    def test_stall_generator_yields_window_remainder(self):
        plan = FaultPlan(nic_stalls=[NodeWindow(0.0, 100.0, node=2)])
        inj = make_injector(plan)
        gen = inj.stall(2)
        assert next(gen) == 100.0
        gen.close()
        assert inj.summary()["nic_stalls"] == 1
        assert inj.summary()["nic_stall_cycles"] == 100.0
        # A node outside the window is not stalled at all.
        with pytest.raises(StopIteration):
            next(inj.stall(0))

    def test_suspect_links(self):
        plan = FaultPlan(
            link_faults=[LinkFault(drop_prob=1.0, src=0, dst=1)],
            link_down=[DownWindow(10.0, 20.0, src=2, dst=3)])
        inj = make_injector(plan)
        assert inj.suspect_links(15.0) == {(0, 1), (2, 3)}
        assert inj.suspect_links(25.0) == {(0, 1)}


# ---------------------------------------------------------------------------
# End-to-end: transport over a lossy network
# ---------------------------------------------------------------------------

class TestTransportEndToEnd:
    def test_lossy_run_delivers_with_counted_retries(self):
        model, result = run_pingpong(drop_plan(0.4, seed=0), repeats=3)
        t = result.fault_summary["transport"]
        assert t["delivered"] == 6                # 3 repeats x 2 directions
        assert t["delivery_failed"] == 0
        assert result.fault_summary["dropped"] > 0
        assert t["retransmissions"] > 0
        assert result.retransmissions == t["retransmissions"]
        # Every delivery is logged, in delivery order.
        times = [entry[3] for entry in model.transport.delivery_log]
        assert len(times) == 6 and times == sorted(times)
        # Attempts reconcile: one initial attempt per delivery + retries.
        assert t["attempts"] == t["delivered"] + t["retransmissions"]

    def test_fault_free_transport_is_invisible_in_outcome(self):
        plan = drop_plan(0.0)
        plan.link_down = [DownWindow(0.0, 1.0)]   # non-empty, injects ~0
        model, result = run_pingpong(plan)
        t = result.fault_summary["transport"]
        assert t["delivered"] == 4 and t["retransmissions"] == 0
        assert result.delivery_failures == 0

    def test_down_window_delays_but_never_loses(self):
        plan = FaultPlan(link_down=[DownWindow(0.0, 5_000.0)])
        model, result = run_pingpong(plan)
        assert result.fault_summary["down_waits"] > 0
        assert result.fault_summary["transport"]["delivered"] == 4
        _model, baseline = run_pingpong(drop_plan(0.0, corrupt=0.0,
                                                  max_retries=0))
        assert result.total_cycles > baseline.total_cycles

    def test_corruption_is_discarded_and_resent(self):
        plan = drop_plan(0.0, seed=2)
        plan.link_faults = [LinkFault(drop_prob=0.0, corrupt_prob=0.5)]
        model, result = run_pingpong(plan)
        t = result.fault_summary["transport"]
        assert t["delivered"] == 4
        assert t["corrupt_discards"] > 0
        # A corrupt copy never reaches the application: each logical
        # message records exactly one app-level delivery latency, even
        # though the engine carried more physical copies.
        assert result.message_latency.count == 4
        assert result.messages_delivered > 4

    def test_node_pause_stops_the_operation_stream(self):
        plan = FaultPlan(node_pauses=[NodeWindow(0.0, 10_000.0, node=0)])
        _model, result = run_pingpong(plan)
        assert result.fault_summary["node_pauses"] >= 1
        assert result.total_cycles >= 10_000.0

    def test_nic_stall_counts_and_delays(self):
        plan = FaultPlan(nic_stalls=[NodeWindow(0.0, 3_000.0, node=0)])
        _model, result = run_pingpong(plan)
        assert result.fault_summary["nic_stalls"] >= 1
        # The first send reaches the NIC partway into the window (send
        # overhead runs first), so the stall covers the remainder.
        assert 0.0 < result.fault_summary["nic_stall_cycles"] <= 3_000.0

    def test_degraded_routing_rescues_a_dead_link(self):
        plan = FaultPlan(
            seed=1,
            link_faults=[LinkFault(drop_prob=1.0, src=0, dst=1)],
            transport=TransportConfig(timeout_cycles=5_000.0,
                                      backoff_factor=1.0, max_retries=1))
        model, result = run_pingpong(plan, repeats=1)
        t = result.fault_summary["transport"]
        assert t["fallbacks"] >= 1
        assert t["delivered"] == 2
        assert t["delivery_failed"] == 0

    def test_delivery_failed_raises_with_partial_result(self):
        plan = FaultPlan(
            seed=1,
            link_faults=[LinkFault(drop_prob=1.0)],   # every link is dead
            transport=TransportConfig(timeout_cycles=1_000.0,
                                      backoff_factor=1.0, max_retries=1))
        reset_message_ids()
        machine = generic_multicomputer("mesh", (2, 2))
        model = MultiNodeModel(machine, faults=plan)
        traces = pingpong_task_traces(model.n_nodes, size=64, repeats=1, b=1)
        with pytest.raises(DeliveryFailed) as excinfo:
            model.run(list(traces))
        err = excinfo.value
        assert (err.src, err.dst) == (0, 1)
        assert err.attempts == 2                   # 1 + max_retries, no route
        assert err.result is not None              # partial CommResult
        assert err.result.fault_summary["transport"]["delivery_failed"] == 1
        assert model.transport.failures[0]["dst"] == 1

    def test_transport_disabled_drops_are_silent_loss(self):
        # Without the transport a dropped packet is simply gone; the
        # waiting receiver deadlocks — the raw lossy network is usable
        # only through the reliable layer (which is the point).
        from repro.pearl import DeadlockError
        plan = FaultPlan(seed=1, link_faults=[LinkFault(drop_prob=1.0)],
                         transport=TransportConfig(enabled=False))
        reset_message_ids()
        machine = generic_multicomputer("mesh", (2, 2))
        model = MultiNodeModel(machine, faults=plan)
        assert model.transport is None
        traces = pingpong_task_traces(model.n_nodes, size=64, repeats=1, b=1)
        with pytest.raises(DeadlockError):
            model.run(list(traces))
        assert model.injector.dropped > 0


# ---------------------------------------------------------------------------
# Metamorphic properties
# ---------------------------------------------------------------------------

class TestMetamorphic:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1),
           p=st.floats(0.05, 0.5))
    def test_same_seed_same_plan_identical_run(self, seed, p):
        """seed+plan fully determine retries, delivery order, timing."""
        runs = [run_pingpong(drop_plan(p, seed=seed)) for _ in range(2)]
        (m1, r1), (m2, r2) = runs
        assert r1.fault_summary == r2.fault_summary
        assert m1.transport.delivery_log == m2.transport.delivery_log
        assert r1.total_cycles == r2.total_cycles
        assert r1.events_executed == r2.events_executed

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1),
           probs=st.tuples(st.floats(0.0, 0.6), st.floats(0.0, 0.6)))
    def test_raising_drop_probability_is_monotone(self, seed, probs):
        """More loss can only mean more retransmissions, never fewer.

        One uniform draw decides each crossing and the per-link streams
        depend only on (plan seed, link), so raising ``drop_prob`` turns
        some deliveries into drops and no drop back into a delivery.
        Single-hop pingpong keeps draws-per-attempt constant, making the
        whole-run comparison valid.
        """
        lo, hi = sorted(probs)
        _m_lo, r_lo = run_pingpong(drop_plan(lo, seed=seed))
        _m_hi, r_hi = run_pingpong(drop_plan(hi, seed=seed))

        def dropped(result):
            # p == 0.0 normalizes to no plan at all: no fault summary.
            return (result.fault_summary or {}).get("dropped", 0)

        assert r_hi.retransmissions >= r_lo.retransmissions
        assert dropped(r_hi) >= dropped(r_lo)
        assert r_hi.total_cycles >= r_lo.total_cycles

    def test_scaled_zero_equals_fault_free(self):
        plan = drop_plan(0.4)
        assert as_fault_plan(plan.scaled(0.0)) is None

    @pytest.mark.parametrize("kernel", ["seed", "fast"])
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1),
           p=st.floats(0.02, 0.25),
           factors=st.lists(st.floats(0.0, 2.4), min_size=2, max_size=3))
    def test_severity_ladder_is_monotone(self, kernel, seed, p, factors):
        """``[plan.scaled(f) for f in ladder]`` is monotone end to end,
        clamp region included, under both kernel dispatchers.

        The rung family covers the whole severity axis: factor 0 (the
        normalized-away baseline), drawn intermediate factors, and a
        factor large enough to clamp ``drop_prob`` to 1.0 (the joint
        clamp zeroes ``corrupt_prob`` there; the dead wire is rescued
        by degraded routing).  The fault rule covers one directed link
        only, so every rung's draws come from one RNG stream and the
        prefix argument from ``test_raising_drop_probability_is_
        monotone`` applies: dropped and retransmissions never decrease
        with severity, delivered messages never increase.
        """
        base = FaultPlan(
            seed=seed,
            link_faults=[LinkFault(drop_prob=p, corrupt_prob=0.1,
                                   src=0, dst=1)],
            transport=TransportConfig(timeout_cycles=50_000.0,
                                      backoff_factor=1.0,
                                      max_retries=200))
        ladder = [0.0, *sorted(factors), 1e6]       # 1e6: clamped rung
        rungs = [base.scaled(f) for f in ladder]
        assert rungs[-1].link_faults[0].drop_prob == 1.0
        assert rungs[-1].link_faults[0].corrupt_prob == 0.0
        saved = os.environ.get("REPRO_KERNEL")
        rows = []
        try:
            os.environ["REPRO_KERNEL"] = kernel
            for rung in rungs:
                _model, result = run_pingpong(as_fault_plan(rung))
                summary = result.fault_summary or {}
                transport = summary.get("transport", {})
                rows.append({
                    "dropped": summary.get("dropped", 0),
                    "retransmissions": result.retransmissions,
                    "delivered": transport.get(
                        "delivered", result.messages_delivered),
                    "failed": result.delivery_failures,
                })
        finally:
            if saved is None:
                os.environ.pop("REPRO_KERNEL", None)
            else:
                os.environ["REPRO_KERNEL"] = saved
        for lo, hi in zip(rows, rows[1:]):
            assert hi["dropped"] >= lo["dropped"]
            assert hi["retransmissions"] >= lo["retransmissions"]
            assert hi["delivered"] <= lo["delivered"]
        assert all(row["failed"] == 0 for row in rows)
        # The clamped rung really lost traffic and really recovered.
        assert rows[-1]["dropped"] > rows[0]["dropped"]


# ---------------------------------------------------------------------------
# Cross-process reproducibility
# ---------------------------------------------------------------------------

class TestCrossProcess:
    def test_identical_counters_across_processes(self):
        """The same plan produces bit-identical fault counters in
        freshly forked interpreters (the sweep-pool guarantee)."""
        local = faulted_metrics()
        ctx = _mp_context()
        if ctx is None:  # pragma: no cover - non-POSIX platforms
            pytest.skip("no fork start method on this platform")
        with ProcessPoolExecutor(max_workers=2, mp_context=ctx) as pool:
            remote = [f.result()
                      for f in [pool.submit(faulted_metrics)
                                for _ in range(2)]]
        assert remote[0] == local
        assert remote[1] == local
