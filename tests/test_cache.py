"""Cache tag store: mapping, replacement, write policies, invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import CacheConfig
from repro.compmodel import Cache, LineState


def make_cache(**kwargs) -> Cache:
    defaults = dict(size_bytes=128, line_bytes=16, associativity=2,
                    hit_cycles=1.0)
    defaults.update(kwargs)
    return Cache(CacheConfig(**defaults))


class TestMapping:
    def test_line_address(self):
        c = make_cache()
        assert c.line_address(0x0) == 0x0
        assert c.line_address(0x1f) == 0x10
        assert c.line_address(0x20) == 0x20

    def test_same_line_same_set(self):
        c = make_cache()
        c.insert(0x100, LineState.SHARED)
        assert c.contains(0x100) and c.contains(0x10f)
        assert not c.contains(0x110)


class TestLookupAndInsert:
    def test_miss_then_hit(self):
        c = make_cache()
        assert not c.lookup(0x40, is_write=False)
        c.insert(0x40, LineState.SHARED)
        assert c.lookup(0x40, is_write=False)
        assert c.stats.read_misses == 1
        assert c.stats.read_hits == 1

    def test_write_hit_dirties_writeback_line(self):
        c = make_cache(write_policy="write-back")
        c.insert(0x40, LineState.SHARED)
        assert c.lookup(0x40, is_write=True)
        assert c.probe(0x40) is LineState.MODIFIED

    def test_write_hit_does_not_dirty_writethrough_line(self):
        c = make_cache(write_policy="write-through")
        c.insert(0x40, LineState.SHARED)
        c.lookup(0x40, is_write=True)
        assert c.probe(0x40) is LineState.SHARED

    def test_insert_existing_replaces_state(self):
        c = make_cache()
        c.insert(0x40, LineState.SHARED)
        assert c.insert(0x40, LineState.MODIFIED) is None
        assert c.probe(0x40) is LineState.MODIFIED
        assert c.resident_lines == 1

    def test_eviction_returns_victim(self):
        c = make_cache()   # 4 sets, 2 ways; set = (addr>>4) & 3
        # Three lines in set 0: 0x000, 0x040, 0x080
        c.insert(0x000, LineState.SHARED)
        c.insert(0x040, LineState.MODIFIED)
        victim = c.insert(0x080, LineState.SHARED)
        assert victim == (0x000, LineState.SHARED)
        assert c.stats.evictions == 1
        assert c.stats.writebacks == 0

    def test_dirty_victim_counts_writeback(self):
        c = make_cache()
        c.insert(0x000, LineState.MODIFIED)
        c.insert(0x040, LineState.SHARED)
        victim = c.insert(0x080, LineState.SHARED)
        assert victim == (0x000, LineState.MODIFIED)
        assert c.stats.writebacks == 1


class TestReplacement:
    def test_lru_refreshes_on_hit(self):
        c = make_cache(replacement="lru")
        c.insert(0x000, LineState.SHARED)
        c.insert(0x040, LineState.SHARED)
        c.lookup(0x000, is_write=False)      # refresh 0x000
        victim = c.insert(0x080, LineState.SHARED)
        assert victim[0] == 0x040

    def test_fifo_ignores_hits(self):
        c = make_cache(replacement="fifo")
        c.insert(0x000, LineState.SHARED)
        c.insert(0x040, LineState.SHARED)
        c.lookup(0x000, is_write=False)      # does not refresh under FIFO
        victim = c.insert(0x080, LineState.SHARED)
        assert victim[0] == 0x000

    def test_random_eviction_deterministic_with_seed(self):
        def victims(seed):
            c = Cache(CacheConfig(size_bytes=128, line_bytes=16,
                                  associativity=2, replacement="random"),
                      rng=np.random.default_rng(seed))
            c.insert(0x000, LineState.SHARED)
            c.insert(0x040, LineState.SHARED)
            out = []
            for addr in (0x080, 0x0c0, 0x100):
                v = c.insert(addr, LineState.SHARED)
                out.append(v[0])
            return out
        assert victims(1) == victims(1)


class TestCoherenceHooks:
    def test_invalidate(self):
        c = make_cache()
        c.insert(0x40, LineState.MODIFIED)
        assert c.invalidate(0x40) is LineState.MODIFIED
        assert not c.contains(0x40)
        assert c.stats.invalidations_received == 1
        assert c.invalidate(0x40) is LineState.INVALID

    def test_set_state(self):
        c = make_cache()
        c.insert(0x40, LineState.SHARED)
        c.set_state(0x40, LineState.EXCLUSIVE)
        assert c.probe(0x40) is LineState.EXCLUSIVE
        c.set_state(0x40, LineState.INVALID)
        assert not c.contains(0x40)

    def test_set_state_missing_raises(self):
        c = make_cache()
        with pytest.raises(KeyError):
            c.set_state(0x40, LineState.MODIFIED)

    def test_flush_all(self):
        c = make_cache()
        c.insert(0x00, LineState.MODIFIED)
        c.insert(0x40, LineState.SHARED)
        assert c.flush_all() == 1
        assert c.resident_lines == 0


class TestInvariants:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 1023), st.booleans()),
                    max_size=300))
    def test_capacity_never_exceeded(self, accesses):
        c = make_cache()
        for addr, is_write in accesses:
            if not c.lookup(addr, is_write):
                c.insert(addr, LineState.MODIFIED if is_write
                         else LineState.SHARED)
        assert c.resident_lines <= c.cfg.n_lines
        # Every set individually bounded by associativity.
        for s in c._sets:
            assert len(s) <= c.assoc

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=100))
    def test_most_recent_line_always_resident(self, addrs):
        c = make_cache()
        for addr in addrs:
            if not c.lookup(addr, is_write=False):
                c.insert(addr, LineState.SHARED)
            assert c.contains(addr)

    def test_hit_rate_calculation(self):
        c = make_cache()
        c.insert(0x00, LineState.SHARED)
        c.lookup(0x00, is_write=False)
        c.lookup(0x40, is_write=False)
        assert c.stats.hit_rate() == pytest.approx(0.5)
        assert c.stats.accesses == 2
