"""Machine configuration: validation rules and serialization."""

from __future__ import annotations

import pytest

from repro.core.config import (
    BusConfig,
    CPUConfig,
    CacheConfig,
    CacheLevelConfig,
    ConfigError,
    MachineConfig,
    MemoryConfig,
    NetworkConfig,
    NodeConfig,
    TopologyConfig,
)
from repro.machines import generic_multicomputer, powerpc601_node, t805_grid
from repro.operations import ArithType


class TestCacheConfig:
    def test_derived_geometry(self):
        c = CacheConfig(size_bytes=32 * 1024, line_bytes=32, associativity=4)
        assert c.n_lines == 1024
        assert c.n_sets == 256

    def test_fully_associative(self):
        c = CacheConfig(size_bytes=1024, line_bytes=32, associativity=0)
        assert c.n_sets == 1
        c.validate()

    def test_bad_line_size(self):
        with pytest.raises(ConfigError):
            CacheConfig(line_bytes=24).validate()

    def test_size_not_multiple_of_line(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=100, line_bytes=32).validate()

    def test_assoc_does_not_divide(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=96, line_bytes=32,
                        associativity=2).validate()

    def test_bad_policies(self):
        with pytest.raises(ConfigError):
            CacheConfig(write_policy="write-maybe").validate()
        with pytest.raises(ConfigError):
            CacheConfig(replacement="clairvoyant").validate()


class TestBusMemory:
    def test_bus_transfer_cycles(self):
        bus = BusConfig(width_bytes=8, cycles_per_beat=2.0)
        assert bus.transfer_cycles(8) == 2.0
        assert bus.transfer_cycles(9) == 4.0    # ceil to two beats
        assert bus.transfer_cycles(0) == 2.0    # minimum one beat

    def test_memory_line_fill(self):
        mem = MemoryConfig(access_cycles=20.0, cycles_per_word=2.0,
                           word_bytes=8)
        assert mem.line_fill_cycles(8) == 20.0
        assert mem.line_fill_cycles(64) == 20.0 + 7 * 2.0

    def test_bad_values(self):
        with pytest.raises(ConfigError):
            BusConfig(width_bytes=0).validate()
        with pytest.raises(ConfigError):
            MemoryConfig(access_cycles=-1).validate()


class TestCPUConfig:
    def test_missing_arith_entry(self):
        cfg = CPUConfig()
        del cfg.add_cycles[ArithType.DOUBLE]
        with pytest.raises(ConfigError, match="add_cycles"):
            cfg.validate()

    def test_negative_cost(self):
        cfg = CPUConfig(branch_cycles=-1.0)
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_bad_clock(self):
        with pytest.raises(ConfigError):
            CPUConfig(clock_hz=0).validate()


class TestNodeNetwork:
    def test_multi_cpu_needs_cache(self):
        with pytest.raises(ConfigError, match="multi-CPU"):
            NodeConfig(n_cpus=2, cache_levels=[]).validate()

    def test_bad_coherence(self):
        with pytest.raises(ConfigError):
            NodeConfig(coherence="moesi++",
                       cache_levels=[CacheLevelConfig()]).validate()

    def test_bad_routing_switching(self):
        with pytest.raises(ConfigError):
            NetworkConfig(routing="hot-potato").validate()
        with pytest.raises(ConfigError):
            NetworkConfig(switching="circuit").validate()

    def test_bad_link_params(self):
        with pytest.raises(ConfigError):
            NetworkConfig(link_bandwidth=0).validate()
        with pytest.raises(ConfigError):
            NetworkConfig(channel_buffers=0).validate()

    def test_n_nodes(self):
        m = MachineConfig(network=NetworkConfig(
            topology=TopologyConfig(kind="hypercube", dims=(4,))))
        assert m.n_nodes == 16


class TestSerialization:
    @pytest.mark.parametrize("machine", [
        t805_grid(2, 3), powerpc601_node(),
        generic_multicomputer("torus", (3, 3), switching="store_and_forward",
                              n_cpus=2)])
    def test_dict_round_trip(self, machine):
        data = machine.to_dict()
        again = MachineConfig.from_dict(data)
        assert again.to_dict() == data
        assert again.name == machine.name
        assert again.n_nodes == machine.n_nodes

    def test_round_trip_preserves_arith_tables(self):
        m = t805_grid(2, 2)
        again = MachineConfig.from_dict(m.to_dict())
        assert again.node.cpu.mul_cycles[ArithType.INT] == \
            m.node.cpu.mul_cycles[ArithType.INT]
