"""Kernel semantics: events, processes, time, determinism."""

from __future__ import annotations

import pytest

from repro.pearl import (DeadlockError, ProcessKilledError, SimTimeError,
                         SimulationError, Simulator)


class TestHold:
    def test_hold_advances_time(self, sim):
        log = []

        def proc():
            yield 5.0
            log.append(sim.now)
            yield 2.5
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [5.0, 7.5]

    def test_integer_hold_accepted(self, sim):
        def proc():
            yield 3
        sim.process(proc())
        assert sim.run() == 3.0

    def test_zero_hold_runs_at_same_time(self, sim):
        def proc():
            yield 0.0
            return sim.now
        p = sim.process(proc())
        sim.run()
        assert p.result == 0.0

    def test_negative_hold_rejected(self, sim):
        def proc():
            yield -1.0
        sim.process(proc())
        with pytest.raises(SimTimeError):
            sim.run()

    def test_yield_garbage_rejected(self, sim):
        def proc():
            yield "nonsense"
        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_yield_none_reschedules_same_time(self, sim):
        order = []

        def a():
            order.append("a1")
            yield None
            order.append("a2")

        def b():
            order.append("b1")
            yield 0.0
            order.append("b2")

        sim.process(a())
        sim.process(b())
        sim.run()
        # a yields to scheduler; b runs before a resumes.
        assert order == ["a1", "b1", "a2", "b2"]


class TestEvents:
    def test_wait_and_trigger(self, sim):
        ev = sim.event("go")
        got = []

        def waiter():
            value = yield ev
            got.append((sim.now, value))

        def firer():
            yield 10.0
            ev.trigger("hello")

        sim.process(waiter())
        sim.process(firer())
        sim.run()
        assert got == [(10.0, "hello")]

    def test_already_triggered_event_resumes_immediately(self, sim):
        ev = sim.event()
        ev.trigger(42)

        def waiter():
            value = yield ev
            return value

        p = sim.process(waiter())
        sim.run()
        assert p.result == 42
        assert sim.now == 0.0

    def test_double_trigger_raises(self, sim):
        ev = sim.event()
        ev.trigger()
        with pytest.raises(SimulationError):
            ev.trigger()

    def test_multiple_waiters_fifo(self, sim):
        ev = sim.event()
        order = []

        def waiter(tag):
            yield ev
            order.append(tag)

        for tag in ("first", "second", "third"):
            sim.process(waiter(tag))

        def firer():
            yield 1.0
            ev.trigger()

        sim.process(firer())
        sim.run()
        assert order == ["first", "second", "third"]

    def test_timeout_event(self, sim):
        ev = sim.timeout(7.0, value="done")

        def waiter():
            return (yield ev)
        p = sim.process(waiter())
        sim.run()
        assert p.result == "done"
        assert sim.now == 7.0

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimTimeError):
            sim.timeout(-1.0)

    def test_callback_on_trigger(self, sim):
        ev = sim.event()
        seen = []
        ev.add_callback(seen.append)
        ev.trigger("x")
        assert seen == ["x"]

    def test_callback_on_already_triggered(self, sim):
        ev = sim.event()
        ev.trigger("y")
        seen = []
        ev.add_callback(seen.append)
        assert seen == ["y"]


class TestCombinators:
    def test_all_of(self, sim):
        e1, e2 = sim.timeout(3.0, "a"), sim.timeout(5.0, "b")

        def waiter():
            return (yield sim.all_of([e1, e2]))
        p = sim.process(waiter())
        sim.run()
        assert p.result == ["a", "b"]
        assert sim.now == 5.0

    def test_all_of_empty(self, sim):
        def waiter():
            return (yield sim.all_of([]))
        p = sim.process(waiter())
        sim.run()
        assert p.result == []

    def test_any_of_returns_first(self, sim):
        e1, e2 = sim.timeout(9.0, "slow"), sim.timeout(2.0, "fast")

        def waiter():
            return (yield sim.any_of([e1, e2]))
        p = sim.process(waiter())
        sim.run()
        assert p.result == (1, "fast")

    def test_all_of_already_triggered_is_deferred(self, sim):
        """Inputs triggered before all_of() still complete through the
        scheduler, never synchronously inside the constructor."""
        e1, e2 = sim.event(), sim.event()
        e1.trigger("x")
        e2.trigger("y")
        combined = sim.all_of([e1, e2])
        assert not combined.triggered
        sim.run()
        assert combined.triggered
        assert combined.value == ["x", "y"]

    def test_all_of_empty_is_deferred(self, sim):
        combined = sim.all_of([])
        assert not combined.triggered
        sim.run()
        assert combined.triggered
        assert combined.value == []

    def test_any_of_already_triggered_is_deferred(self, sim):
        ev = sim.event()
        ev.trigger("ready")
        combined = sim.any_of([ev])
        assert not combined.triggered
        sim.run()
        assert combined.value == (0, "ready")

    def test_any_of_simultaneous_triggers_fire_once(self, sim):
        """Two inputs completing at the same instant must produce
        exactly one combined trigger (the lower index wins)."""
        e1, e2 = sim.timeout(5.0, "a"), sim.timeout(5.0, "b")
        got = []
        sim.any_of([e1, e2]).add_callback(got.append)
        sim.run()
        assert got == [(0, "a")]


class TestProcesses:
    def test_result_and_terminated_event(self, sim):
        def proc():
            yield 1.0
            return "final"
        p = sim.process(proc())
        watched = []
        p.terminated.add_callback(watched.append)
        sim.run()
        assert p.result == "final"
        assert not p.alive
        assert watched == ["final"]

    def test_process_waiting_on_terminated(self, sim):
        def child():
            yield 4.0
            return 99

        def parent():
            c = sim.process(child())
            value = yield c.terminated
            return value

        p = sim.process(parent())
        sim.run()
        assert p.result == 99

    def test_kill_blocked_process(self, sim):
        ev = sim.event()
        cleaned = []

        def proc():
            try:
                yield ev
            finally:
                cleaned.append(True)

        p = sim.process(proc())
        sim.run()   # proc blocks on ev
        p.kill()
        assert cleaned == [True]
        assert not p.alive
        assert ev._waiters == []

    def test_kill_is_idempotent(self, sim):
        def proc():
            yield sim.event()
        p = sim.process(proc())
        sim.run()
        p.kill()
        p.kill()
        assert sim.live_processes == 0

    def test_exception_propagates_to_run(self, sim):
        def proc():
            yield 1.0
            raise RuntimeError("boom")
        sim.process(proc())
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()

    def test_kill_trapping_generator_raises(self, sim):
        """A generator that catches ProcessKilledError and yields again
        can never be resumed — kill() must refuse it loudly, not leave a
        zombie on the books."""
        def stubborn():
            try:
                yield sim.event()
            except ProcessKilledError:
                yield 1.0          # illegal: yielding after the kill
        p = sim.process(stubborn(), name="stubborn")
        sim.run()
        with pytest.raises(SimulationError, match="trapped"):
            p.kill()
        # Even so the process must end up fully dead and accounted for.
        assert not p.alive
        assert sim.live_processes == 0
        assert p.terminated.triggered

    def test_kill_trapping_generator_may_clean_up(self, sim):
        """Trapping for cleanup is fine as long as the generator then
        finishes instead of yielding."""
        cleaned = []

        def tidy():
            try:
                yield sim.event()
            except ProcessKilledError:
                cleaned.append(True)
        p = sim.process(tidy())
        sim.run()
        p.kill()
        assert cleaned == [True]
        assert not p.alive

    def test_kill_scheduled_process_drops_heap_entry(self, sim):
        """Killing a process with a pending resume must remove that
        event, keeping pending_events truthful."""
        def sleeper():
            yield 10.0
        p = sim.process(sleeper())
        sim.step()                  # start event: sleeper now holds
        assert sim.pending_events == 1
        p.kill()
        assert sim.pending_events == 0
        assert sim.run() == 0.0     # nothing left to execute

    def test_kill_scheduled_process_during_run(self, sim):
        def victim_body():
            yield 100.0
            raise AssertionError("resumed after kill")
        victim = sim.process(victim_body(), name="victim")

        def killer():
            yield 1.0
            victim.kill()
        sim.process(killer())
        assert sim.run() == 1.0
        assert not victim.alive


class TestRun:
    def test_until_stops_cleanly(self, sim):
        def proc():
            for _ in range(10):
                yield 10.0
        sim.process(proc())
        assert sim.run(until=35.0) == 35.0
        assert sim.pending_events == 1

    def test_until_executes_events_at_bound(self, sim):
        hits = []

        def proc():
            yield 10.0
            hits.append(sim.now)
        sim.process(proc())
        sim.run(until=10.0)
        assert hits == [10.0]

    def test_deadlock_detection(self, sim):
        def proc():
            yield sim.event("never")
        sim.process(proc(), name="stuck")
        with pytest.raises(DeadlockError) as exc:
            sim.run(check_deadlock=True)
        assert "stuck" in exc.value.blocked

    def test_no_deadlock_error_when_all_finish(self, sim):
        def proc():
            yield 1.0
        sim.process(proc())
        sim.run(check_deadlock=True)

    def test_step(self, sim):
        def proc():
            yield 1.0
            yield 1.0
        sim.process(proc())
        steps = 0
        while sim.step():
            steps += 1
        assert steps == 3   # start + two holds
        assert sim.now == 2.0

    def test_blocked_process_names(self, sim):
        ev = sim.event()

        def blocked():
            yield ev

        def running():
            yield 100.0

        sim.process(blocked(), name="b")
        sim.process(running(), name="r")
        sim.run(until=1.0)
        assert sim.blocked_process_names() == ["b"]


class TestDeterminism:
    def test_identical_runs_identical_schedules(self):
        def build():
            sim = Simulator()
            log = []

            def worker(i):
                for k in range(5):
                    yield (i + 1) * 0.5
                    log.append((sim.now, i, k))
            for i in range(4):
                sim.process(worker(i))
            sim.run()
            return log

        assert build() == build()

    def test_fifo_tie_break_at_same_time(self, sim):
        order = []

        def worker(tag):
            yield 5.0
            order.append(tag)

        for tag in range(6):
            sim.process(worker(tag))
        sim.run()
        assert order == list(range(6))


class TestStepRunParity:
    """step() and run() share one dispatch loop (PR-3 regression)."""

    @staticmethod
    def _workload(sim):
        ch_ev = sim.event("gate")

        def worker(i):
            yield i * 0.5
            yield 1.0
            if i == 0:
                ch_ev.trigger("go")
            else:
                yield ch_ev

        for i in range(3):
            sim.process(worker(i), name=f"w{i}")

    def test_step_fires_trace_hook(self):
        times = []
        sim = Simulator(trace_hook=lambda t, target: times.append(t))

        def proc():
            yield 1.0
        sim.process(proc())
        while sim.step():
            pass
        assert times == [0.0, 1.0]

    def test_step_while_running_raises(self, sim):
        def proc():
            yield 0.0
            sim.step()
        sim.process(proc())
        with pytest.raises(SimulationError, match="step"):
            sim.run()

    def test_run_is_not_reentrant(self, sim):
        def proc():
            yield 0.0
            sim.run()
        sim.process(proc())
        with pytest.raises(SimulationError, match="reentrant"):
            sim.run()

    def test_interleaved_step_run_identical_trace(self):
        from repro.observe import Tracer

        def trace(n_steps):
            sim = Simulator()
            tracer = Tracer()
            sim.attach_tracer(tracer)
            self._workload(sim)
            for _ in range(n_steps):
                assert sim.step()
            sim.run()
            return [(r.ph, r.cat, r.name, r.ts, r.dur, r.tid)
                    for r in tracer.records]

        pure_run = trace(0)
        assert pure_run  # the workload produces records
        for n_steps in (1, 3, 5):
            assert trace(n_steps) == pure_run

    def test_events_executed_counts_all_dispatches(self, sim):
        def proc():
            yield 1.0
            yield 1.0
        sim.process(proc())
        assert sim.events_executed == 0
        sim.step()
        assert sim.events_executed == 1
        sim.run()
        assert sim.events_executed == 3   # start + two holds


class TestTraceHook:
    def test_hook_sees_every_event(self):
        events = []
        sim = Simulator(trace_hook=lambda t, target: events.append(t))

        def proc():
            yield 1.0
            yield 2.0

        sim.process(proc())
        sim.run()
        # start + two holds = three executed events.
        assert events == [0.0, 1.0, 3.0]

    def test_hook_receives_process_target(self):
        targets = []
        sim = Simulator(trace_hook=lambda t, target: targets.append(target))

        def proc():
            yield 1.0

        p = sim.process(proc(), name="traced")
        sim.run()
        assert all(t is p for t in targets)


class TestDispatcherParity:
    """Seed and fast kernels execute identical schedules (PR-6).

    The ``sim`` fixture already runs every test in this file under both
    dispatchers; this class adds the *cross*-kernel assertions for the
    scenarios that construct their own Simulator.
    """

    KERNELS = ("seed", "fast")

    @staticmethod
    def _mixed_workload(sim, log):
        gate = sim.event("gate")

        def worker(i):
            yield i * 0.5
            log.append(("held", sim.now, i))
            yield 1.0
            if i == 0:
                gate.trigger("go")
                log.append(("fired", sim.now, i))
            else:
                value = yield gate
                log.append(("woke", sim.now, i, value))

        for i in range(4):
            sim.process(worker(i), name=f"w{i}")

    def test_identical_schedules_across_kernels(self):
        def run(kernel):
            sim = Simulator(kernel=kernel)
            log = []
            self._mixed_workload(sim, log)
            end = sim.run()
            return log, end, sim.events_executed

        seed, fast = run("seed"), run("fast")
        assert seed == fast

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_interleaved_step_run_identical_trace(self, kernel):
        from repro.observe import Tracer

        def trace(n_steps):
            sim = Simulator(kernel=kernel)
            tracer = Tracer()
            sim.attach_tracer(tracer)
            log = []
            self._mixed_workload(sim, log)
            for _ in range(n_steps):
                assert sim.step()
            sim.run()
            return [(r.ph, r.cat, r.name, r.ts, r.dur, r.tid)
                    for r in tracer.records]

        pure_run = trace(0)
        assert pure_run
        for n_steps in (1, 3, 5):
            assert trace(n_steps) == pure_run

    def test_tracer_records_identical_across_kernels(self):
        from repro.observe import Tracer

        def records(kernel):
            sim = Simulator(kernel=kernel)
            tracer = Tracer()
            sim.attach_tracer(tracer)
            log = []
            self._mixed_workload(sim, log)
            sim.run()
            return [(r.ph, r.cat, r.name, r.ts, r.dur, r.tid)
                    for r in tracer.records]

        seed = records("seed")
        assert seed
        assert seed == records("fast")

    def test_trace_hook_parity(self):
        def hook_times(kernel):
            times = []
            sim = Simulator(kernel=kernel,
                            trace_hook=lambda t, target: times.append(t))
            log = []
            self._mixed_workload(sim, log)
            sim.run()
            return times

        assert hook_times("seed") == hook_times("fast")

    def test_env_selects_dispatcher(self, monkeypatch):
        from repro.pearl import FastSimulator

        monkeypatch.setenv("REPRO_KERNEL", "fast")
        assert isinstance(Simulator(), FastSimulator)
        monkeypatch.setenv("REPRO_KERNEL", "seed")
        assert type(Simulator()) is Simulator
        monkeypatch.setenv("REPRO_KERNEL", "bogus")
        with pytest.raises(SimulationError, match="REPRO_KERNEL"):
            Simulator()

    def test_explicit_kernel_overrides_env(self, monkeypatch):
        from repro.pearl import FastSimulator

        monkeypatch.setenv("REPRO_KERNEL", "seed")
        assert isinstance(Simulator(kernel="fast"), FastSimulator)
        monkeypatch.setenv("REPRO_KERNEL", "fast")
        assert type(Simulator(kernel="seed")) is Simulator


class TestTimer:
    """Cancellable timers (the reliable transport's retransmit clock)."""

    def test_timer_fires_with_value(self, sim):
        log = []

        def proc():
            t = sim.timer(25.0, value="expired")
            value = yield t.event
            log.append((sim.now, value, t.active))

        sim.process(proc())
        sim.run()
        assert log == [(25.0, "expired", False)]

    def test_cancel_prevents_firing_and_clock_drag(self, sim):
        timers = []

        def proc():
            t = sim.timer(1_000.0)
            timers.append(t)
            yield 5.0
            assert t.cancel() is True
            yield 5.0

        sim.process(proc())
        assert sim.run() == 10.0          # never dragged out to 1000
        t = timers[0]
        assert not t.active
        assert not t.event.triggered

    def test_cancel_returns_false_when_too_late(self, sim):
        timers = []

        def proc():
            t = sim.timer(5.0)
            timers.append(t)
            yield t.event

        sim.process(proc())
        sim.run()
        assert timers[0].cancel() is False    # already fired
        # Cancelling twice is also a no-op.
        t2 = sim.timer(5.0)
        assert t2.cancel() is True
        assert t2.cancel() is False

    def test_cancelled_timer_keeps_event_accounting_exact(self, sim):
        def proc():
            t = sim.timer(100.0)
            yield 1.0
            t.cancel()

        sim.process(proc())
        sim.run()
        # One process event executed per step; the cancelled trigger
        # must not be counted as executed (same contract as kill()).
        assert sim.events_executed == 2

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimTimeError):
            sim.timer(-1.0)

    def test_race_timer_vs_event_any_of(self, sim):
        """The transport's select: whichever fires first wins."""
        from repro.pearl import Event
        log = []

        def winner(ev):
            yield 3.0
            ev.trigger("data")

        def proc():
            ev = Event(sim, "data")
            sim.process(winner(ev))
            t = sim.timer(50.0, value="timeout")
            idx, value = yield sim.any_of([ev, t.event])
            log.append((idx, value, sim.now))
            t.cancel()

        sim.process(proc())
        assert sim.run() == 3.0
        assert log == [(0, "data", 3.0)]
