"""Kernel semantics: events, processes, time, determinism."""

from __future__ import annotations

import pytest

from repro.pearl import DeadlockError, SimTimeError, SimulationError, Simulator


class TestHold:
    def test_hold_advances_time(self, sim):
        log = []

        def proc():
            yield 5.0
            log.append(sim.now)
            yield 2.5
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [5.0, 7.5]

    def test_integer_hold_accepted(self, sim):
        def proc():
            yield 3
        sim.process(proc())
        assert sim.run() == 3.0

    def test_zero_hold_runs_at_same_time(self, sim):
        def proc():
            yield 0.0
            return sim.now
        p = sim.process(proc())
        sim.run()
        assert p.result == 0.0

    def test_negative_hold_rejected(self, sim):
        def proc():
            yield -1.0
        sim.process(proc())
        with pytest.raises(SimTimeError):
            sim.run()

    def test_yield_garbage_rejected(self, sim):
        def proc():
            yield "nonsense"
        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_yield_none_reschedules_same_time(self, sim):
        order = []

        def a():
            order.append("a1")
            yield None
            order.append("a2")

        def b():
            order.append("b1")
            yield 0.0
            order.append("b2")

        sim.process(a())
        sim.process(b())
        sim.run()
        # a yields to scheduler; b runs before a resumes.
        assert order == ["a1", "b1", "a2", "b2"]


class TestEvents:
    def test_wait_and_trigger(self, sim):
        ev = sim.event("go")
        got = []

        def waiter():
            value = yield ev
            got.append((sim.now, value))

        def firer():
            yield 10.0
            ev.trigger("hello")

        sim.process(waiter())
        sim.process(firer())
        sim.run()
        assert got == [(10.0, "hello")]

    def test_already_triggered_event_resumes_immediately(self, sim):
        ev = sim.event()
        ev.trigger(42)

        def waiter():
            value = yield ev
            return value

        p = sim.process(waiter())
        sim.run()
        assert p.result == 42
        assert sim.now == 0.0

    def test_double_trigger_raises(self, sim):
        ev = sim.event()
        ev.trigger()
        with pytest.raises(SimulationError):
            ev.trigger()

    def test_multiple_waiters_fifo(self, sim):
        ev = sim.event()
        order = []

        def waiter(tag):
            yield ev
            order.append(tag)

        for tag in ("first", "second", "third"):
            sim.process(waiter(tag))

        def firer():
            yield 1.0
            ev.trigger()

        sim.process(firer())
        sim.run()
        assert order == ["first", "second", "third"]

    def test_timeout_event(self, sim):
        ev = sim.timeout(7.0, value="done")

        def waiter():
            return (yield ev)
        p = sim.process(waiter())
        sim.run()
        assert p.result == "done"
        assert sim.now == 7.0

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimTimeError):
            sim.timeout(-1.0)

    def test_callback_on_trigger(self, sim):
        ev = sim.event()
        seen = []
        ev.add_callback(seen.append)
        ev.trigger("x")
        assert seen == ["x"]

    def test_callback_on_already_triggered(self, sim):
        ev = sim.event()
        ev.trigger("y")
        seen = []
        ev.add_callback(seen.append)
        assert seen == ["y"]


class TestCombinators:
    def test_all_of(self, sim):
        e1, e2 = sim.timeout(3.0, "a"), sim.timeout(5.0, "b")

        def waiter():
            return (yield sim.all_of([e1, e2]))
        p = sim.process(waiter())
        sim.run()
        assert p.result == ["a", "b"]
        assert sim.now == 5.0

    def test_all_of_empty(self, sim):
        def waiter():
            return (yield sim.all_of([]))
        p = sim.process(waiter())
        sim.run()
        assert p.result == []

    def test_any_of_returns_first(self, sim):
        e1, e2 = sim.timeout(9.0, "slow"), sim.timeout(2.0, "fast")

        def waiter():
            return (yield sim.any_of([e1, e2]))
        p = sim.process(waiter())
        sim.run()
        assert p.result == (1, "fast")


class TestProcesses:
    def test_result_and_terminated_event(self, sim):
        def proc():
            yield 1.0
            return "final"
        p = sim.process(proc())
        watched = []
        p.terminated.add_callback(watched.append)
        sim.run()
        assert p.result == "final"
        assert not p.alive
        assert watched == ["final"]

    def test_process_waiting_on_terminated(self, sim):
        def child():
            yield 4.0
            return 99

        def parent():
            c = sim.process(child())
            value = yield c.terminated
            return value

        p = sim.process(parent())
        sim.run()
        assert p.result == 99

    def test_kill_blocked_process(self, sim):
        ev = sim.event()
        cleaned = []

        def proc():
            try:
                yield ev
            finally:
                cleaned.append(True)

        p = sim.process(proc())
        sim.run()   # proc blocks on ev
        p.kill()
        assert cleaned == [True]
        assert not p.alive
        assert ev._waiters == []

    def test_kill_is_idempotent(self, sim):
        def proc():
            yield sim.event()
        p = sim.process(proc())
        sim.run()
        p.kill()
        p.kill()
        assert sim.live_processes == 0

    def test_exception_propagates_to_run(self, sim):
        def proc():
            yield 1.0
            raise RuntimeError("boom")
        sim.process(proc())
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()


class TestRun:
    def test_until_stops_cleanly(self, sim):
        def proc():
            for _ in range(10):
                yield 10.0
        sim.process(proc())
        assert sim.run(until=35.0) == 35.0
        assert sim.pending_events == 1

    def test_until_executes_events_at_bound(self, sim):
        hits = []

        def proc():
            yield 10.0
            hits.append(sim.now)
        sim.process(proc())
        sim.run(until=10.0)
        assert hits == [10.0]

    def test_deadlock_detection(self, sim):
        def proc():
            yield sim.event("never")
        sim.process(proc(), name="stuck")
        with pytest.raises(DeadlockError) as exc:
            sim.run(check_deadlock=True)
        assert "stuck" in exc.value.blocked

    def test_no_deadlock_error_when_all_finish(self, sim):
        def proc():
            yield 1.0
        sim.process(proc())
        sim.run(check_deadlock=True)

    def test_step(self, sim):
        def proc():
            yield 1.0
            yield 1.0
        sim.process(proc())
        steps = 0
        while sim.step():
            steps += 1
        assert steps == 3   # start + two holds
        assert sim.now == 2.0

    def test_blocked_process_names(self, sim):
        ev = sim.event()

        def blocked():
            yield ev

        def running():
            yield 100.0

        sim.process(blocked(), name="b")
        sim.process(running(), name="r")
        sim.run(until=1.0)
        assert sim.blocked_process_names() == ["b"]


class TestDeterminism:
    def test_identical_runs_identical_schedules(self):
        def build():
            sim = Simulator()
            log = []

            def worker(i):
                for k in range(5):
                    yield (i + 1) * 0.5
                    log.append((sim.now, i, k))
            for i in range(4):
                sim.process(worker(i))
            sim.run()
            return log

        assert build() == build()

    def test_fifo_tie_break_at_same_time(self, sim):
        order = []

        def worker(tag):
            yield 5.0
            order.append(tag)

        for tag in range(6):
            sim.process(worker(tag))
        sim.run()
        assert order == list(range(6))


class TestTraceHook:
    def test_hook_sees_every_event(self):
        events = []
        sim = Simulator(trace_hook=lambda t, target: events.append(t))

        def proc():
            yield 1.0
            yield 2.0

        sim.process(proc())
        sim.run()
        # start + two holds = three executed events.
        assert events == [0.0, 1.0, 3.0]

    def test_hook_receives_process_target(self):
        targets = []
        sim = Simulator(trace_hook=lambda t, target: targets.append(target))

        def proc():
            yield 1.0

        p = sim.process(proc(), name="traced")
        sim.run()
        assert all(t is p for t in targets)
