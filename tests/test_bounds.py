"""Static performance-bound analyzer (``repro.bounds``) and PB rules.

The analyzer's contract is that every number it reports is a certified
lower bound computed without ever constructing the simulator.  Both
halves are tested here: a kernel-call spy proves zero simulation, and
the oracle tests prove ``cycle_lower_bound <= total_cycles`` (with
exact ties on contention-free workloads) plus exact static/simulated
link-byte agreement under deterministic routing.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.bounds import (
    AuditResult,
    BoundReport,
    audit_cache,
    compute_bounds,
    cross_check,
    static_diagnostics,
)
from repro.check import Severity, check_bounds
from repro.cli import PRESETS, build_machine, main
from repro.commmodel.network import MultiNodeModel
from repro.commmodel.nic import RecvAnyEvent
from repro.core.workbench import Workbench
from repro.operations.ops import arecv, asend, compute, recv, send
from repro.operations.trace import Trace, TraceSet
from repro.pearl import Simulator

APPS = ("pingpong", "alltoall", "pipeline")


def _app_traces(app: str, n_nodes: int) -> TraceSet:
    from repro.apps import (alltoall_task_traces, pingpong_task_traces,
                            pipeline_task_traces)
    return {"pingpong": pingpong_task_traces,
            "alltoall": alltoall_task_traces,
            "pipeline": pipeline_task_traces}[app](n_nodes)


def _overload_traces() -> TraceSet:
    """Three upstream nodes funnel 4 x 8 KiB each through node 0.

    On a 4x1 mesh chain every message crosses link ``1->0``, whose
    serialization demand dwarfs the (fully asynchronous) critical path:
    the canonical statically link-limited workload.
    """
    lists = [
        [arecv(s) for s in (1, 2, 3) for _ in range(4)],
        [asend(8192, 0) for _ in range(4)],
        [asend(8192, 0) for _ in range(4)],
        [asend(8192, 0) for _ in range(4)],
    ]
    return TraceSet([Trace(i, ops) for i, ops in enumerate(lists)])


def _overload_machine():
    return build_machine("generic-mesh", ["network.topology.dims=4,1"])


@pytest.fixture
def no_simulator(monkeypatch):
    """Arm the kernel-call spy: constructing a Simulator is a failure."""
    def boom(self, *args, **kwargs):
        raise AssertionError(
            "Simulator constructed during static bound analysis")
    monkeypatch.setattr(Simulator, "__init__", boom)


class TestZeroSimulation:
    """Static means static: the spy trips on any Simulator.__init__."""

    def test_spy_is_armed(self, no_simulator):
        with pytest.raises(AssertionError, match="static bound"):
            Simulator()

    def test_compute_bounds_every_preset_and_app(self, no_simulator):
        for preset in PRESETS:
            machine = build_machine(preset)
            for app in APPS:
                report = compute_bounds(machine,
                                        _app_traces(app, machine.n_nodes))
                assert report.cycle_lower_bound > 0
                assert report.converged

    def test_bound_cli_never_simulates(self, no_simulator, capsys):
        for app in APPS:
            assert main(["bound", app]) == 0
        assert "critical path" in capsys.readouterr().out

    def test_check_bounds_never_simulates(self, no_simulator):
        machine = build_machine("t805-grid-2x2")
        report = check_bounds(machine, _app_traces("pingpong", 4))
        assert report.ok


class TestBoundOracle:
    """bound <= simulated, with exact ties where contention is absent."""

    @pytest.mark.parametrize("app", APPS)
    @pytest.mark.parametrize("kernel", ["seed", "fast"])
    def test_bound_below_simulated(self, app, kernel):
        machine = build_machine("t805-grid-2x2")
        traces = _app_traces(app, machine.n_nodes)
        bound = compute_bounds(machine, traces)
        model = MultiNodeModel(machine, sim=Simulator(kernel=kernel))
        result = model.run(list(traces))
        assert bound.cycle_lower_bound <= result.total_cycles * (1 + 1e-9)
        assert not cross_check(bound, result.total_cycles,
                               gap_threshold=None)

    @pytest.mark.parametrize("app", APPS)
    def test_exact_tie_on_contention_free_grid(self, app):
        """The 2x2 t805 grid leaves these apps contention-free: the
        static bound is not merely below the simulated time, it *is*
        the simulated time."""
        machine = build_machine("t805-grid-2x2")
        traces = _app_traces(app, machine.n_nodes)
        bound = compute_bounds(machine, traces)
        result = MultiNodeModel(machine).run(list(traces))
        assert math.isclose(bound.cycle_lower_bound, result.total_cycles,
                            rel_tol=1e-9)

    def test_bound_below_simulated_all_presets(self):
        for preset in PRESETS:
            machine = build_machine(preset)
            traces = _app_traces("alltoall", machine.n_nodes)
            bound = compute_bounds(machine, traces)
            total = MultiNodeModel(machine).run(list(traces)).total_cycles
            assert bound.cycle_lower_bound <= total * (1 + 1e-9), preset

    @pytest.mark.parametrize("kernel", ["seed", "fast"])
    def test_static_link_bytes_match_simulation(self, kernel):
        """Deterministic routing: static per-link wire bytes equal the
        engine's Link.bytes_moved accounting exactly."""
        machine = build_machine("t805-grid-2x2")
        traces = _app_traces("alltoall", machine.n_nodes)
        bound = compute_bounds(machine, traces)
        model = MultiNodeModel(machine, sim=Simulator(kernel=kernel))
        model.run(list(traces))
        simulated = {key: link.bytes_moved
                     for key, link in model.engine.links.items()
                     if link.bytes_moved}
        static = {(l.src, l.dst): l.bytes for l in bound.link_loads}
        assert static == pytest.approx(simulated)

    def test_report_shape(self):
        machine = build_machine("t805-grid-2x2")
        report = compute_bounds(machine, _app_traces("pingpong", 4),
                                subject="bounds:pingpong:test")
        assert isinstance(report, BoundReport)
        assert report.subject == "bounds:pingpong:test"
        assert report.n_nodes == machine.n_nodes
        assert report.routing_exact and report.converged
        assert report.stalled_nodes == ()
        assert report.critical_path_cycles <= report.cycle_lower_bound
        assert len(report.nodes) == machine.n_nodes
        for node in report.nodes:
            assert node.finish_lower >= node.serial_cycles >= 0
        payload = report.to_dict()
        assert payload["n_links_loaded"] == len(report.link_loads)
        assert json.dumps(payload, sort_keys=True)  # JSON-serializable
        assert "critical path" in report.format()

    def test_message_class_latency_components(self):
        machine = build_machine("t805-grid-2x2")
        report = compute_bounds(machine, _app_traces("pingpong", 4))
        assert report.message_classes
        for cls in report.message_classes:
            assert cls.hops >= 1
            assert math.isclose(
                cls.latency_cycles,
                cls.o_send + cls.transit_cycles + cls.o_recv)
            assert cls.gap_cycles > 0


class TestOverloadFixture:
    """PB002 on the seeded statically link-limited workload."""

    def test_pb002_fires(self):
        report = compute_bounds(_overload_machine(), _overload_traces())
        diags = static_diagnostics(report)
        assert diags, "expected PB002 on the funnel chain"
        assert {d.rule for d in diags} == {"PB002"}
        assert all(d.severity is Severity.ERROR for d in diags)
        assert "link 1->0" in {d.location for d in diags}

    def test_hot_link_ranking(self):
        report = compute_bounds(_overload_machine(), _overload_traces())
        hot = report.hot_links(top=3)
        assert [l.key for l in hot] == ["1->0", "2->1", "3->2"]
        overloaded = report.overloaded_links(report.critical_path_cycles)
        assert {l.key for l in overloaded} >= {"1->0"}
        assert report.cycle_lower_bound >= hot[0].demand_cycles

    def test_simulation_confirms_the_bound(self):
        """The analyzer's promise on its own adversarial fixture: the
        demand-driven bound is still below the simulated time."""
        traces = _overload_traces()
        machine = _overload_machine()
        report = compute_bounds(machine, traces)
        total = MultiNodeModel(machine).run(
            list(traces)).total_cycles
        assert report.cycle_lower_bound <= total * (1 + 1e-9)

    def test_cli_exit_one(self, tmp_path, capsys):
        path = tmp_path / "overload.npz"
        _overload_traces().save(str(path))
        assert main(["bound", str(path), "--preset", "generic-mesh",
                     "--set", "network.topology.dims=4,1"]) == 1
        out = capsys.readouterr().out
        assert "PB002" in out and "1->0" in out


class TestAdaptiveRouting:
    """random_minimal makes link loads expectations: severities degrade."""

    @pytest.fixture
    def adaptive_report(self):
        machine = build_machine(
            "generic-mesh", ["network.topology.dims=4,1",
                             "network.switching=store_and_forward",
                             "network.routing=random_minimal"])
        return compute_bounds(machine, _overload_traces())

    def test_routing_not_exact(self, adaptive_report):
        assert adaptive_report.routing_exact is False
        assert "expected" in adaptive_report.format()

    def test_pb002_degrades_to_warning(self, adaptive_report):
        diags = static_diagnostics(adaptive_report)
        assert diags
        assert all(d.severity is Severity.WARNING for d in diags)

    def test_pb001_degrades_to_warning(self, adaptive_report):
        diags = cross_check(adaptive_report,
                            adaptive_report.cycle_lower_bound * 0.5)
        assert [d.rule for d in diags] == ["PB001"]
        assert diags[0].severity is Severity.WARNING

    def test_bound_still_below_simulated(self):
        machine = build_machine(
            "t805-grid-2x2", ["network.routing=random_minimal"])
        traces = _app_traces("alltoall", machine.n_nodes)
        bound = compute_bounds(machine, traces)
        total = MultiNodeModel(machine).run(list(traces)).total_cycles
        assert bound.cycle_lower_bound <= total * (1 + 1e-9)


class TestCrossCheck:
    @pytest.fixture
    def report(self):
        return compute_bounds(build_machine("t805-grid-2x2"),
                              _app_traces("pingpong", 4))

    def test_below_bound_is_pb001_error(self, report):
        diags = cross_check(report, report.cycle_lower_bound * 0.5)
        assert [d.rule for d in diags] == ["PB001"]
        assert diags[0].severity is Severity.ERROR

    def test_exact_tie_is_clean(self, report):
        assert cross_check(report, report.cycle_lower_bound) == []

    def test_tiny_float_slack_tolerated(self, report):
        almost = report.cycle_lower_bound * (1 - 1e-12)
        assert cross_check(report, almost) == []

    def test_large_gap_is_pb003_note(self, report):
        diags = cross_check(report, report.cycle_lower_bound * 20,
                            gap_threshold=10.0)
        assert [d.rule for d in diags] == ["PB003"]
        assert diags[0].severity is Severity.NOTE

    def test_gap_threshold_none_disables_pb003(self, report):
        assert cross_check(report, report.cycle_lower_bound * 1000,
                           gap_threshold=None) == []


class TestStalledWorkload:
    def test_unmatched_recv_reports_partial_bound(self):
        machine = build_machine("t805-grid-2x2")
        lists = [[compute(100.0), recv(1)], [compute(50.0)], [], []]
        traces = TraceSet([Trace(i, ops) for i, ops in enumerate(lists)])
        report = compute_bounds(machine, traces)
        assert report.converged is False
        assert 0 in report.stalled_nodes
        # The partial bound still covers the work that does complete.
        assert report.critical_path_cycles >= 100.0
        # Non-convergence degrades PB001 to a warning.
        diags = cross_check(report, report.cycle_lower_bound * 0.5)
        assert diags and diags[0].severity is Severity.WARNING

    def test_recv_any_is_tolerated_conservatively(self):
        machine = build_machine("t805-grid-2x2")
        lists = [[RecvAnyEvent([1, 2]), RecvAnyEvent([1, 2])],
                 [compute(500.0), send(64, 0)],
                 [send(64, 0)],
                 []]
        traces = [list(ops) for ops in lists]
        report = compute_bounds(machine, traces)
        assert report.converged
        total = MultiNodeModel(machine).run(
            [list(ops) for ops in lists]).total_cycles
        assert report.cycle_lower_bound <= total * (1 + 1e-9)


class TestWorkbenchFacade:
    def test_bound_by_application(self):
        wb = Workbench(build_machine("t805-grid-2x2"))
        report = wb.bound(application="pingpong")
        assert isinstance(report, BoundReport)
        assert report.subject == "bounds:pingpong:t805-grid-2x2"

    def test_bound_by_traces(self):
        wb = Workbench(build_machine("t805-grid-2x2"))
        report = wb.bound(_app_traces("alltoall", wb.n_nodes))
        assert report.cycle_lower_bound > 0

    def test_exactly_one_input_required(self):
        wb = Workbench(build_machine("t805-grid-2x2"))
        with pytest.raises(ValueError, match="exactly one"):
            wb.bound()
        with pytest.raises(ValueError, match="exactly one"):
            wb.bound(_app_traces("pingpong", 4), application="pingpong")

    def test_unknown_application(self):
        wb = Workbench(build_machine("t805-grid-2x2"))
        with pytest.raises(ValueError, match="unknown application"):
            wb.bound(application="mandelbrot")


class TestCheckBoundsFacade:
    def test_clean_workload(self):
        machine = build_machine("t805-grid-2x2")
        report = check_bounds(machine, _app_traces("pingpong", 4))
        assert report.ok and not report.diagnostics
        assert report.subject == "bounds:t805-grid-2x2"

    def test_overload_fails(self):
        report = check_bounds(_overload_machine(), _overload_traces())
        assert not report.ok
        assert {d.rule for d in report.errors} == {"PB002"}

    def test_broken_traces_suppress_bound_analysis(self):
        """A ghost-peer trace set fails check_traces; the bound pass
        must stay silent rather than analyze meaningless geometry —
        and must not duplicate the TR findings (those belong to
        check_traces)."""
        machine = build_machine("t805-grid-2x2")
        lists = [[asend(64, 99)], [], [], []]
        traces = TraceSet([Trace(i, ops) for i, ops in enumerate(lists)])
        report = check_bounds(machine, traces)
        assert len(report.diagnostics) == 0


def _warm_cache(tmp_path) -> str:
    cache_dir = str(tmp_path / "cache")
    assert main(["sweep", "t805-grid-2x2", "--rounds", "2",
                 "--axis", "network.link_bandwidth=2,4",
                 "--cache-dir", cache_dir]) == 0
    return cache_dir


def _cache_entries(cache_dir):
    from pathlib import Path
    return sorted(Path(cache_dir).glob("*/*.json"))


class TestCacheAudit:
    def test_clean_audit(self, tmp_path, capsys):
        cache_dir = _warm_cache(tmp_path)
        result = audit_cache(cache_dir)
        assert isinstance(result, AuditResult)
        assert result.n_checked == 2 and result.n_skipped == 0
        assert result.ok
        assert "2 checked" in result.format()

    def test_worker_count_does_not_change_output(self, tmp_path, capsys):
        cache_dir = _warm_cache(tmp_path)
        one = json.dumps(audit_cache(cache_dir, workers=1).to_dict(),
                         sort_keys=True)
        three = json.dumps(audit_cache(cache_dir, workers=3).to_dict(),
                           sort_keys=True)
        assert one == three

    def test_doctored_row_trips_pb001(self, tmp_path, capsys):
        cache_dir = _warm_cache(tmp_path)
        entry_path = _cache_entries(cache_dir)[0]
        entry = json.loads(entry_path.read_text())
        entry["metrics"]["total_cycles"] = 1.0
        entry_path.write_text(json.dumps(entry))
        result = audit_cache(cache_dir)
        assert not result.ok
        rules = [d.rule for d in result.diagnostics]
        assert "PB001" in rules
        capsys.readouterr()
        assert main(["bound", "--audit", cache_dir]) == 1
        assert "PB001" in capsys.readouterr().out

    def test_fault_metric_rows_skipped(self, tmp_path, capsys):
        cache_dir = _warm_cache(tmp_path)
        entry_path = _cache_entries(cache_dir)[0]
        entry = json.loads(entry_path.read_text())
        entry["metrics"]["dropped"] = 3
        entry_path.write_text(json.dumps(entry))
        result = audit_cache(cache_dir)
        assert result.n_checked == 1 and result.n_skipped == 1
        (skip,) = [r for r in result.rows if r["status"] == "skipped"]
        assert "fault" in skip["reason"]

    def test_rows_without_machine_config_skipped(self, tmp_path, capsys):
        cache_dir = _warm_cache(tmp_path)
        entry_path = _cache_entries(cache_dir)[0]
        entry = json.loads(entry_path.read_text())
        del entry["machine_config"]
        entry_path.write_text(json.dumps(entry))
        result = audit_cache(cache_dir)
        assert result.n_skipped == 1
        (skip,) = [r for r in result.rows if r["status"] == "skipped"]
        assert "machine_config" in skip["reason"]

    def test_foreign_workload_ids_skipped(self, tmp_path, capsys):
        cache_dir = _warm_cache(tmp_path)
        entry_path = _cache_entries(cache_dir)[0]
        entry = json.loads(entry_path.read_text())
        entry["workload_id"] = "my-bespoke-benchmark"
        entry_path.write_text(json.dumps(entry))
        result = audit_cache(cache_dir)
        assert result.n_skipped == 1
        (skip,) = [r for r in result.rows if r["status"] == "skipped"]
        assert "not reconstructible" in skip["reason"]

    def test_unreadable_entries_skipped(self, tmp_path, capsys):
        cache_dir = _warm_cache(tmp_path)
        entry_path = _cache_entries(cache_dir)[0]
        entry_path.write_text("{not json")
        result = audit_cache(cache_dir)
        assert result.n_skipped == 1
        (skip,) = [r for r in result.rows if r["status"] == "skipped"]
        assert "unreadable" in skip["reason"]

    def test_skips_recorded_in_json_schema(self, tmp_path, capsys):
        cache_dir = _warm_cache(tmp_path)
        entry_path = _cache_entries(cache_dir)[0]
        entry = json.loads(entry_path.read_text())
        entry["metrics"]["dropped"] = 1
        entry_path.write_text(json.dumps(entry))
        payload = audit_cache(cache_dir).to_dict()
        assert payload["ok"] is True
        assert payload["audit"]["rows"] == 2
        assert payload["audit"]["checked"] == 1
        assert payload["audit"]["skipped"] == 1
        (skip,) = payload["audit"]["skips"]
        assert skip["key"] and skip["reason"]

    def test_missing_cache_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            audit_cache(str(tmp_path / "nowhere"))
