"""Monitors: tally statistics (vs numpy) and time-weighted levels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.pearl import Simulator, TallyMonitor, TimeWeightedMonitor

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)


class TestTally:
    def test_empty(self):
        m = TallyMonitor("empty")
        assert m.count == 0
        assert m.mean == 0.0
        assert m.variance == 0.0
        s = m.summary()
        assert s["min"] == 0.0 and s["max"] == 0.0

    def test_basic_stats(self):
        m = TallyMonitor()
        for v in (2.0, 4.0, 6.0):
            m.record(v)
        assert m.mean == pytest.approx(4.0)
        assert m.min == 2.0 and m.max == 6.0
        assert m.total == 12.0
        assert m.variance == pytest.approx(4.0)

    @given(st.lists(finite_floats, min_size=2, max_size=200))
    def test_matches_numpy(self, values):
        m = TallyMonitor()
        for v in values:
            m.record(v)
        arr = np.asarray(values)
        assert m.mean == pytest.approx(float(arr.mean()), rel=1e-9, abs=1e-6)
        assert m.variance == pytest.approx(float(arr.var(ddof=1)),
                                           rel=1e-6, abs=1e-6)
        assert m.min == float(arr.min())
        assert m.max == float(arr.max())

    @given(st.lists(finite_floats, min_size=1, max_size=50),
           st.lists(finite_floats, min_size=1, max_size=50))
    def test_merge_equals_combined(self, a, b):
        m1 = TallyMonitor()
        m2 = TallyMonitor()
        combined = TallyMonitor()
        for v in a:
            m1.record(v)
            combined.record(v)
        for v in b:
            m2.record(v)
            combined.record(v)
        m1.merge(m2)
        assert m1.count == combined.count
        assert m1.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-6)
        assert m1.variance == pytest.approx(combined.variance,
                                            rel=1e-6, abs=1e-6)

    def test_merge_into_empty(self):
        m1, m2 = TallyMonitor(), TallyMonitor()
        m2.record(3.0)
        m1.merge(m2)
        assert m1.count == 1 and m1.mean == 3.0

    def test_merge_empty_is_noop(self):
        m1, m2 = TallyMonitor(), TallyMonitor()
        m1.record(5.0)
        m1.merge(m2)
        assert m1.count == 1 and m1.mean == 5.0

    def test_keep_samples(self):
        m = TallyMonitor(keep_samples=True)
        for v in (1.0, 2.0):
            m.record(v)
        assert m.samples == [1.0, 2.0]

    def test_merge_into_empty_adopts_samples(self):
        """Merging into an empty monitor is a copy: the raw samples of
        ``other`` must survive even when self lacked keep_samples."""
        m1 = TallyMonitor()
        m2 = TallyMonitor(keep_samples=True)
        for v in (1.0, 2.0, 3.0):
            m2.record(v)
        m1.merge(m2)
        assert m1.samples == [1.0, 2.0, 3.0]
        m2.record(4.0)
        assert m1.samples == [1.0, 2.0, 3.0]   # a copy, not an alias

    def test_merge_into_empty_keep_samples_monitor(self):
        m1 = TallyMonitor(keep_samples=True)
        m2 = TallyMonitor(keep_samples=True)
        m2.record(9.0)
        m1.merge(m2)
        assert m1.samples == [9.0]

    @given(st.lists(st.lists(finite_floats, min_size=0, max_size=20),
                    min_size=1, max_size=5))
    def test_merge_chain_equals_concatenated_stream(self, chunks):
        """Folding per-worker monitors together must equal recording the
        concatenated sample stream into one monitor — the contract the
        parallel sweep's result merging relies on."""
        merged = TallyMonitor(keep_samples=True)
        reference = TallyMonitor(keep_samples=True)
        for chunk in chunks:
            part = TallyMonitor(keep_samples=True)
            for v in chunk:
                part.record(v)
                reference.record(v)
            merged.merge(part)
        assert merged.count == reference.count
        assert merged.samples == reference.samples
        assert merged.total == pytest.approx(reference.total, abs=1e-6)
        assert merged.mean == pytest.approx(reference.mean,
                                            rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(reference.variance,
                                                rel=1e-6, abs=1e-6)
        if reference.count:
            assert merged.min == reference.min
            assert merged.max == reference.max


class TestTimeWeighted:
    def test_time_average(self):
        sim = Simulator()
        m = TimeWeightedMonitor(sim, initial=0.0)

        def proc():
            m.record(10.0)
            yield 5.0
            m.record(0.0)
            yield 5.0

        sim.process(proc())
        sim.run()
        assert m.time_average() == pytest.approx(5.0)

    def test_add_delta(self):
        sim = Simulator()
        m = TimeWeightedMonitor(sim, initial=1.0)

        def proc():
            yield 2.0
            m.add(3.0)   # level 4 from t=2
            yield 2.0

        sim.process(proc())
        sim.run()
        # (1*2 + 4*2) / 4 = 2.5
        assert m.time_average() == pytest.approx(2.5)
        assert m.max == 4.0 and m.min == 1.0

    def test_horizon_extends_current_level(self):
        sim = Simulator()
        m = TimeWeightedMonitor(sim, initial=2.0)
        assert m.time_average(horizon=10.0) == pytest.approx(2.0)

    def test_zero_span_returns_level(self):
        sim = Simulator()
        m = TimeWeightedMonitor(sim, initial=7.0)
        assert m.time_average() == 7.0

    def test_horizon_before_last_record_clamps(self):
        """A horizon earlier than the last record would back-extrapolate
        the current level over history; it clamps instead (regression:
        this used to produce negative and out-of-range averages)."""
        sim = Simulator()
        m = TimeWeightedMonitor(sim, initial=10.0)

        def proc():
            yield 10.0
            m.record(0.0)      # level 10 held over [0, 10]
        sim.process(proc())
        sim.run()
        clamped = m.time_average(horizon=5.0)
        assert clamped == pytest.approx(m.time_average(horizon=10.0))
        assert clamped == pytest.approx(10.0)
        # The average can never leave the observed level range.
        assert m.min <= clamped <= m.max
