"""Scheduler properties (repro.service.scheduler).

The scheduler is admission policy — quotas, strict-priority lanes,
anti-starvation aging — so its invariants are stated as hypothesis
properties over randomized operation sequences rather than a handful
of hand-picked orders:

* **quota** — no tenant's active (queued + running) count ever
  exceeds ``tenant_quota``; the over-quota submit is the one that
  raises, never a later victim;
* **no starvation** — under an adversarial stream of high-lane
  arrivals, a low-lane job is still acquired within
  ``starvation_bound + 1`` acquires;
* **cancel exactness** — cancelling any subset of queued jobs never
  loses or duplicates any *other* job.

All properties drive the scheduler single-threaded with ``timeout=0``
acquires (an empty scheduler returns ``None`` immediately), so runs
are deterministic.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.service import LANES, JobScheduler, QuotaExceeded

TENANTS = ("alice", "bob", "carol")

lanes = st.sampled_from(LANES)
tenants = st.sampled_from(TENANTS)


# ---------------------------------------------------------------------------
# Deterministic basics
# ---------------------------------------------------------------------------

class TestBasics:
    def test_strict_priority_then_fifo_within_lane(self):
        sched = JobScheduler(tenant_quota=10)
        for i, lane in enumerate(["low", "normal", "high", "high", "low"]):
            sched.submit(f"job-{i}", lane=lane)
        order = [sched.acquire(timeout=0) for _ in range(5)]
        assert order == ["job-2", "job-3", "job-1", "job-0", "job-4"]
        assert sched.acquire(timeout=0) is None

    def test_unknown_lane_and_bad_params_rejected(self):
        sched = JobScheduler()
        with pytest.raises(ValueError, match="unknown lane"):
            sched.submit("job-1", lane="urgent")
        with pytest.raises(ValueError, match="tenant_quota"):
            JobScheduler(tenant_quota=0)
        with pytest.raises(ValueError, match="starvation_bound"):
            JobScheduler(starvation_bound=0)

    def test_release_frees_quota_slot(self):
        sched = JobScheduler(tenant_quota=1)
        sched.submit("job-1", tenant="alice")
        with pytest.raises(QuotaExceeded):
            sched.submit("job-2", tenant="alice")
        assert sched.acquire(timeout=0) == "job-1"
        with pytest.raises(QuotaExceeded):   # running still counts
            sched.submit("job-2", tenant="alice")
        sched.release("job-1")
        sched.submit("job-2", tenant="alice")
        assert sched.active("alice") == 1

    def test_cancel_only_touches_queued_jobs(self):
        sched = JobScheduler()
        sched.submit("job-1")
        sched.submit("job-2")
        assert sched.acquire(timeout=0) == "job-1"
        assert sched.cancel("job-1") is False   # running: executor's job
        assert sched.cancel("nope") is False
        assert sched.cancel("job-2") is True
        assert sched.acquire(timeout=0) is None

    def test_snapshot_shape(self):
        sched = JobScheduler()
        sched.submit("job-1", tenant="bob", lane="low")
        sched.submit("job-2", tenant="alice")
        sched.acquire(timeout=0)
        assert sched.snapshot() == {
            "queued": {"high": 0, "normal": 0, "low": 1},
            "running": 1,
            "tenants": {"alice": 1, "bob": 1},
        }


# ---------------------------------------------------------------------------
# Property: per-tenant quota is never exceeded
# ---------------------------------------------------------------------------

operations = st.lists(
    st.tuples(st.sampled_from(["submit", "acquire", "release", "cancel"]),
              tenants, lanes),
    max_size=60)


@settings(max_examples=60, deadline=None)
@given(ops=operations, quota=st.integers(1, 3))
def test_quota_never_exceeded(ops, quota):
    sched = JobScheduler(tenant_quota=quota)
    ids = iter(range(10_000))
    queued: dict[str, str] = {}    # job_id -> tenant
    running: dict[str, str] = {}
    for op, tenant, lane in ops:
        if op == "submit":
            job_id = f"job-{next(ids)}"
            active = sum(1 for t in (*queued.values(), *running.values())
                         if t == tenant)
            if active >= quota:
                with pytest.raises(QuotaExceeded):
                    sched.submit(job_id, tenant=tenant, lane=lane)
            else:
                sched.submit(job_id, tenant=tenant, lane=lane)
                queued[job_id] = tenant
        elif op == "acquire":
            got = sched.acquire(timeout=0)
            if queued:
                assert got in queued
                running[got] = queued.pop(got)
            else:
                assert got is None
        elif op == "release":
            victim = min(running) if running else "absent"
            sched.release(victim)    # unknown release is a no-op
            running.pop(victim, None)
        elif op == "cancel":
            victim = min(queued) if queued else "absent"
            assert sched.cancel(victim) is (victim in queued)
            queued.pop(victim, None)
        for t in TENANTS:
            model = sum(1 for x in (*queued.values(), *running.values())
                        if x == t)
            assert sched.active(t) == model
            assert sched.active(t) <= quota


# ---------------------------------------------------------------------------
# Property: lower lanes are never starved indefinitely
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(bound=st.integers(1, 6), victim_lane=st.sampled_from(["normal",
                                                             "low"]),
       burst=st.integers(0, 3))
def test_low_lane_acquired_within_starvation_bound(bound, victim_lane,
                                                   burst):
    sched = JobScheduler(tenant_quota=10_000, starvation_bound=bound)
    sched.submit("victim", tenant="victim", lane=victim_lane)
    ids = iter(range(10_000))
    # Adversary: keep the high lane non-empty forever, with `burst`
    # extra arrivals before each acquire.
    acquires = 0
    while True:
        for _ in range(burst + 1):
            sched.submit(f"hostile-{next(ids)}",
                         tenant=f"t{next(ids)}", lane="high")
        got = sched.acquire(timeout=0)
        acquires += 1
        if got == "victim":
            break
        assert acquires <= bound + 1, \
            f"victim not scheduled after {acquires} acquires " \
            f"(starvation_bound={bound})"


# ---------------------------------------------------------------------------
# Property: cancelling jobs never loses or duplicates the others
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(jobs=st.lists(lanes, min_size=1, max_size=25),
       data=st.data())
def test_cancel_exactness(jobs, data):
    sched = JobScheduler(tenant_quota=10_000)
    all_ids = []
    for i, lane in enumerate(jobs):
        job_id = f"job-{i}"
        sched.submit(job_id, tenant=f"t{i % 3}", lane=lane)
        all_ids.append(job_id)
    to_cancel = data.draw(st.sets(st.sampled_from(all_ids)),
                          label="cancelled")
    for job_id in sorted(to_cancel):
        assert sched.cancel(job_id) is True
    acquired = []
    while (got := sched.acquire(timeout=0)) is not None:
        acquired.append(got)
        sched.release(got)
    assert sorted(acquired) == sorted(set(all_ids) - to_cancel)
    assert len(acquired) == len(set(acquired))
    for tenant in ("t0", "t1", "t2"):
        assert sched.active(tenant) == 0
