"""Cross-cutting property-based tests (hypothesis).

Deeper invariants than the per-module suites: kernel schedule laws,
channel/NIC ordering, network delivery completeness, cache inclusion,
and trace-generation determinism, each over randomized inputs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import (
    CacheConfig,
    MachineConfig,
    NetworkConfig,
    TopologyConfig,
)
from repro.commmodel import MultiNodeModel
from repro.compmodel import Cache, LineState
from repro.operations import compute, recv, send
from repro.pearl import Channel, Simulator


# ---------------------------------------------------------------------------
# Kernel laws
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(st.lists(st.lists(st.floats(0.01, 50.0), min_size=1, max_size=8),
                min_size=1, max_size=6))
def test_kernel_final_time_is_max_process_time(delay_lists):
    """With independent processes, end time = max of per-process sums."""
    sim = Simulator()

    def proc(delays):
        for d in delays:
            yield d

    for delays in delay_lists:
        sim.process(proc(list(delays)))
    end = sim.run()
    assert end == pytest.approx(max(sum(d) for d in delay_lists))


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=20))
def test_kernel_time_monotone(delays):
    """Observed simulation time never decreases."""
    sim = Simulator()
    observed = []

    def proc():
        for d in delays:
            yield d
            observed.append(sim.now)

    sim.process(proc())
    sim.run()
    assert observed == sorted(observed)


# ---------------------------------------------------------------------------
# Channel ordering
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 1000), min_size=1, max_size=30),
       st.integers(0, 3))
def test_channel_fifo_under_any_capacity(messages, cap_choice):
    """Messages always arrive in send order, whatever the capacity."""
    sim = Simulator()
    capacity = [None, 0, 1, 4][cap_choice]
    ch = Channel(sim, capacity=capacity)
    got = []

    def sender():
        for m in messages:
            yield ch.send(m)

    def receiver():
        for _ in messages:
            got.append((yield ch.receive()))

    sim.process(sender())
    sim.process(receiver())
    sim.run(check_deadlock=True)
    assert got == messages


# ---------------------------------------------------------------------------
# Network delivery completeness
# ---------------------------------------------------------------------------

def _machine(kind, dims, switching):
    return MachineConfig(
        name="prop",
        network=NetworkConfig(
            topology=TopologyConfig(kind=kind, dims=dims),
            switching=switching,
            send_overhead=10.0, recv_overhead=10.0,
            packet_bytes=128)).validate()


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_every_message_delivered_exactly_once(data):
    """Random matched traffic: delivered == injected, conservation."""
    kind, dims = data.draw(st.sampled_from([
        ("ring", (5,)), ("mesh", (2, 3)), ("hypercube", (3,))]))
    switching = data.draw(st.sampled_from(
        ["store_and_forward", "virtual_cut_through", "wormhole"]))
    machine = _machine(kind, dims, switching)
    n = machine.n_nodes
    n_msgs = data.draw(st.integers(1, 12))
    pairs = [data.draw(st.tuples(st.integers(0, n - 1),
                                 st.integers(0, n - 1)))
             for _ in range(n_msgs)]
    pairs = [(a, b) for a, b in pairs if a != b]
    streams = [[] for _ in range(n)]
    for a, b in pairs:
        size = data.draw(st.integers(1, 2000))
        streams[a].append(send(size, b))
        streams[b].append(recv(a))
    net = MultiNodeModel(machine)
    res = net.run(streams)
    assert res.messages_delivered == len(pairs)
    assert net.engine.messages_injected == len(pairs)
    total_sent = sum(nic.stats.messages_sent for nic in net.nics)
    total_recv = sum(nic.stats.messages_received for nic in net.nics)
    assert total_sent == total_recv == len(pairs)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2 ** 31 - 1))
def test_network_determinism_over_seeds(seed):
    """Same machine/traces => identical end time, regardless of host
    state (the kernel owns all ordering)."""
    from repro.tracegen import StochasticAppDescription, StochasticGenerator
    machine = _machine("mesh", (2, 2), "wormhole")
    gen = StochasticGenerator(StochasticAppDescription(), 4,
                              seed=seed % 1000)
    traces = gen.generate_task_level(5)
    a = MultiNodeModel(machine).run(traces).total_cycles
    b = MultiNodeModel(machine).run(traces).total_cycles
    assert a == b


# ---------------------------------------------------------------------------
# Cache inclusion (LRU stack property)
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 2047), min_size=1, max_size=300))
def test_lru_fully_associative_inclusion(addresses):
    """A larger fully-associative LRU cache never misses more (the
    classic stack-algorithm inclusion property)."""
    def misses(size_bytes):
        cache = Cache(CacheConfig(size_bytes=size_bytes, line_bytes=16,
                                  associativity=0))
        for addr in addresses:
            if not cache.lookup(addr, is_write=False):
                cache.insert(addr, LineState.SHARED)
        return cache.stats.misses

    assert misses(256) >= misses(512) >= misses(1024)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 4095), min_size=1, max_size=200))
def test_cache_miss_count_bounds(addresses):
    """Misses are at least the number of distinct lines (cold) and at
    most the number of accesses."""
    cache = Cache(CacheConfig(size_bytes=512, line_bytes=32,
                              associativity=2))
    for addr in addresses:
        if not cache.lookup(addr, is_write=False):
            cache.insert(addr, LineState.SHARED)
    distinct_lines = len({a // 32 for a in addresses})
    assert distinct_lines <= cache.stats.misses + cache.stats.hits
    assert cache.stats.misses >= min(distinct_lines, 1)
    assert cache.stats.misses <= len(addresses)


# ---------------------------------------------------------------------------
# Compute conservation
# ---------------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(st.lists(st.lists(st.floats(1.0, 10_000.0), max_size=6),
                min_size=4, max_size=4))
def test_compute_cycles_conserved(task_lists):
    """The network model charges exactly the compute cycles it is fed."""
    machine = _machine("mesh", (2, 2), "store_and_forward")
    streams = [[compute(d) for d in tasks] for tasks in task_lists]
    net = MultiNodeModel(machine)
    res = net.run(streams)
    for i, tasks in enumerate(task_lists):
        assert res.activity[i].compute_cycles == pytest.approx(sum(tasks))
    assert res.total_cycles == pytest.approx(
        max((sum(t) for t in task_lists), default=0.0))


# ---------------------------------------------------------------------------
# Sweep variant-generation laws (vary_machine)
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(0.5, 64.0), min_size=1, max_size=10))
def test_vary_machine_base_never_mutated(bandwidths):
    """The base config is untouched no matter how many variants spawn."""
    from repro import generic_multicomputer, vary_machine
    base = generic_multicomputer("mesh", (2, 2))
    snapshot = base.to_dict()
    vary_machine(base,
                 lambda m, v: setattr(m.network, "link_bandwidth", v),
                 bandwidths)
    assert base.to_dict() == snapshot


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(0.5, 64.0), min_size=1, max_size=10))
def test_vary_machine_one_valid_variant_per_value(bandwidths):
    """Variant count equals value count; every variant validates and
    carries its own value, independent of its siblings."""
    from repro import generic_multicomputer, vary_machine
    base = generic_multicomputer("mesh", (2, 2))
    variants = vary_machine(
        base, lambda m, v: setattr(m.network, "link_bandwidth", v),
        bandwidths)
    assert len(variants) == len(bandwidths)
    for machine, value in zip(variants, bandwidths):
        machine.validate()
        assert machine.network.link_bandwidth == value
    assert len({id(m) for m in variants}) == len(variants)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.sampled_from([4, 8, 16, 32, 64, 128]),
                min_size=1, max_size=8))
def test_vary_machine_structural_mutations_validate(kib_sizes):
    """Cache-geometry mutations re-validate per variant and never leak
    into the base or each other."""
    from repro import generic_multicomputer, vary_machine

    def set_l1(machine, kib):
        machine.node.cache_levels[0].data.size_bytes = kib * 1024

    base = generic_multicomputer("mesh", (2, 2))
    original = base.node.cache_levels[0].data.size_bytes
    variants = vary_machine(base, set_l1, kib_sizes)
    assert base.node.cache_levels[0].data.size_bytes == original
    assert [m.node.cache_levels[0].data.size_bytes
            for m in variants] == [k * 1024 for k in kib_sizes]
