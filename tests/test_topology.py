"""Topology builders: sizes, degrees, diameters, wrap edges."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.config import ConfigError, TopologyConfig
from repro.topology import (
    Topology,
    build_topology,
    full,
    hypercube,
    mesh,
    node_count,
    ring,
    star,
    torus,
    tree,
)


class TestMesh:
    def test_size_and_links(self):
        t = mesh(3, 4)
        assert t.n == 12
        # links: horizontal 3*3*2 + vertical 2*4*2 = 34 directed
        assert t.n_links == 2 * (3 * (4 - 1) + 4 * (3 - 1))

    def test_corner_and_center_degrees(self):
        t = mesh(3, 3)
        assert t.degree(0) == 2         # corner
        assert t.degree(4) == 4         # center

    def test_diameter(self):
        assert mesh(4, 4).diameter() == 6
        assert mesh(1, 8).diameter() == 7

    def test_3d(self):
        t = mesh(2, 2, 2)
        assert t.n == 8
        assert t.diameter() == 3

    def test_coords(self):
        t = mesh(2, 3)
        assert t.coords[0] == (0, 0)
        assert t.coords[5] == (1, 2)


class TestTorus:
    def test_wraparound_reduces_diameter(self):
        assert torus(4, 4).diameter() == 4
        assert mesh(4, 4).diameter() == 6

    def test_uniform_degree(self):
        t = torus(4, 4)
        assert all(t.degree(i) == 4 for i in range(16))

    def test_extent2_no_duplicate_edges(self):
        t = torus(2, 2)
        assert t.n_links == mesh(2, 2).n_links

    def test_wrap_edge_detection(self):
        t = torus(4, 4)
        wraps = [(u, v) for (u, v) in t.links() if t.is_wrap_edge(u, v)]
        # per row and per column one wrap pair -> 4+4 bidirectional = 16.
        assert len(wraps) == 16
        assert not any(mesh(4, 4).is_wrap_edge(u, v)
                       for u, v in mesh(4, 4).links())


class TestHypercube:
    @pytest.mark.parametrize("d", [0, 1, 2, 3, 4])
    def test_size_degree_diameter(self, d):
        t = hypercube(d)
        assert t.n == 2 ** d
        if d:
            assert all(t.degree(i) == d for i in range(t.n))
            assert t.diameter() == d

    def test_neighbors_differ_one_bit(self):
        t = hypercube(4)
        for u in range(t.n):
            for v in t.neighbors(u):
                assert bin(u ^ v).count("1") == 1


class TestOthers:
    def test_ring(self):
        t = ring(6)
        assert t.n == 6 and all(t.degree(i) == 2 for i in range(6))
        assert t.diameter() == 3
        assert ring(1).n == 1
        assert ring(2).n_links == 2

    def test_ring_wrap_edge(self):
        t = ring(5)
        assert t.is_wrap_edge(0, 4) and t.is_wrap_edge(4, 0)
        assert not t.is_wrap_edge(1, 2)

    def test_star(self):
        t = star(5)
        assert t.degree(0) == 4
        assert all(t.degree(i) == 1 for i in range(1, 5))
        assert t.diameter() == 2

    def test_tree(self):
        t = tree(2, 3)   # complete binary tree height 3
        assert t.n == 15
        assert t.degree(0) == 2
        assert t.degree(14) == 1
        assert t.diameter() == 6

    def test_full(self):
        t = full(5)
        assert t.n_links == 5 * 4
        assert t.diameter() == 1


class TestGraphOps:
    def test_connectivity(self):
        assert mesh(3, 3).is_connected()
        disconnected = Topology("custom", 4, [(0, 1), (2, 3)])
        assert not disconnected.is_connected()
        with pytest.raises(ConfigError):
            disconnected.diameter()

    def test_bfs_distances(self):
        t = ring(8)
        d = t.shortest_path_lengths(0)
        assert d[4] == 4 and d[7] == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigError):
            Topology("bad", 2, [(0, 0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ConfigError):
            Topology("bad", 2, [(0, 5)])

    def test_duplicate_edges_deduplicated(self):
        t = Topology("custom", 2, [(0, 1), (1, 0), (0, 1)])
        assert t.n_links == 2


class TestBuildAndCount:
    @pytest.mark.parametrize("kind,dims", [
        ("mesh", (3, 4)), ("torus", (4, 4)), ("hypercube", (3,)),
        ("ring", (7,)), ("star", (5,)), ("tree", (2, 3)), ("full", (6,))])
    def test_node_count_matches_build(self, kind, dims):
        cfg = TopologyConfig(kind=kind, dims=dims)
        assert build_topology(cfg).n == node_count(cfg)

    def test_bad_kind(self):
        with pytest.raises(ConfigError):
            build_topology(TopologyConfig(kind="klein-bottle", dims=(2,)))

    def test_bad_dims(self):
        with pytest.raises(ConfigError):
            mesh()
        with pytest.raises(ConfigError):
            ring(0)
        with pytest.raises(ConfigError):
            tree(0, 2)

    @given(st.integers(2, 5), st.integers(2, 5))
    def test_mesh_diameter_formula(self, a, b):
        assert mesh(a, b).diameter() == (a - 1) + (b - 1)


class TestShortestPathAvoiding:
    """Degraded-routing support: BFS around an avoid-set of links."""

    def test_plain_shortest_path_when_nothing_avoided(self):
        t = mesh(2, 2)
        assert t.shortest_path_avoiding(0, 3, set()) in ([0, 1, 3],
                                                         [0, 2, 3])

    def test_detour_around_directed_link(self):
        t = mesh(2, 2)
        path = t.shortest_path_avoiding(0, 1, {(0, 1)})
        assert path == [0, 2, 3, 1]
        # Only the 0->1 direction is avoided; the reverse is intact.
        assert t.shortest_path_avoiding(1, 0, {(0, 1)}) == [1, 0]

    def test_none_when_destination_is_cut_off(self):
        t = star(4)                       # hub 0, leaves 1..3
        assert t.shortest_path_avoiding(1, 2, {(0, 2)}) is None

    def test_src_equals_dst(self):
        assert mesh(2, 2).shortest_path_avoiding(2, 2, {(0, 1)}) == [2]

    def test_deterministic_choice_prefers_low_neighbors(self):
        # Both [0,1,3] and [0,2,3] are shortest on the 2x2 mesh; BFS in
        # ascending neighbour order must always return the same one.
        t = mesh(2, 2)
        paths = {tuple(t.shortest_path_avoiding(0, 3, frozenset()))
                 for _ in range(8)}
        assert paths == {(0, 1, 3)}

    def test_avoiding_everything_out_of_a_node(self):
        t = ring(5)
        avoid = {(0, 1), (0, 4)}
        assert t.shortest_path_avoiding(0, 2, avoid) is None
