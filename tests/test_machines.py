"""Machine presets and calibration micro-benchmarks."""

from __future__ import annotations

import pytest

from repro import Workbench
from repro.apps import make_pingpong
from repro.machines import (
    calibrate,
    generic_multicomputer,
    measure_arithmetic_throughput,
    measure_link_parameters,
    measure_memory_latencies,
    powerpc601_node,
    smp_node,
    t805_grid,
)
from repro.operations import ArithType


class TestPresets:
    def test_t805_grid_shape(self):
        m = t805_grid(4, 4)
        assert m.n_nodes == 16
        assert m.network.switching == "store_and_forward"
        assert m.node.cpu.clock_hz == 30e6
        m.validate()

    def test_powerpc601_two_cache_levels(self):
        m = powerpc601_node()
        assert len(m.node.cache_levels) == 2
        assert m.node.cache_levels[0].data.size_bytes == 32 * 1024
        assert m.node.cache_levels[1].data.associativity == 1
        m.validate()

    def test_generic_configurable(self):
        m = generic_multicomputer("hypercube", (4,), switching="wormhole")
        assert m.n_nodes == 16
        assert m.node.cache_levels[0].split

    def test_smp_node(self):
        m = smp_node(8, coherence="msi")
        assert m.node.n_cpus == 8
        assert m.node.coherence == "msi"

    def test_presets_runnable(self):
        res = Workbench(t805_grid(2, 2)).run_hybrid(
            make_pingpong(size=256, repeats=1))
        assert res.total_cycles > 0


class TestCalibration:
    def test_memory_latency_ordering(self):
        m = powerpc601_node()
        lat = measure_memory_latencies(m, accesses=512)
        assert lat["l1_hit_cycles"] < lat["last_level_cycles"]
        assert lat["last_level_cycles"] < lat["memory_cycles_per_line"]

    def test_l1_latency_matches_config(self):
        m = generic_multicomputer("mesh", (2, 2))
        lat = measure_memory_latencies(m, accesses=512)
        assert lat["l1_hit_cycles"] == pytest.approx(
            m.node.cache_levels[0].data.hit_cycles, rel=0.05)

    def test_link_fit_recovers_bandwidth(self):
        m = generic_multicomputer("mesh", (2, 2))
        fit = measure_link_parameters(m)
        assert fit["effective_bandwidth"] == pytest.approx(
            m.network.link_bandwidth, rel=0.25)
        assert fit["alpha_cycles"] > 0

    def test_latency_monotone_in_size(self):
        m = t805_grid(2, 2)
        fit = measure_link_parameters(m, sizes=(64, 1024, 16384))
        lats = list(fit["latencies"].values())
        assert lats == sorted(lats)

    def test_arith_throughput_matches_tables(self):
        m = powerpc601_node()
        arith = measure_arithmetic_throughput(m, n_ops=1000)
        cpu = m.node.cpu
        assert arith["int_add"] == pytest.approx(
            cpu.add_cycles[ArithType.INT])
        assert arith["double_mul"] == pytest.approx(
            cpu.mul_cycles[ArithType.DOUBLE])
        assert arith["double_div"] == pytest.approx(
            cpu.div_cycles[ArithType.DOUBLE])

    def test_full_report(self):
        report = calibrate(generic_multicomputer("mesh", (2, 2)))
        text = report.format()
        assert "l1_hit_cycles" in text
        assert "link_bandwidth" in text
        assert all(r["relative_error"] < 0.5 for r in report.rows)
