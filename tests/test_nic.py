"""NIC internals: buffering, matching order, completion, statistics."""

from __future__ import annotations

from repro.commmodel import MultiNodeModel
from repro.core.config import MachineConfig, NetworkConfig, TopologyConfig
from repro.operations import arecv, asend, compute, recv, send


def make_net(**net_kw) -> MultiNodeModel:
    defaults = dict(send_overhead=0.0, recv_overhead=0.0)
    defaults.update(net_kw)
    cfg = NetworkConfig(topology=TopologyConfig(kind="ring", dims=(4,)),
                        **defaults)
    return MultiNodeModel(MachineConfig(name="nic", network=cfg).validate())


class TestBuffering:
    def test_buffered_count(self):
        net = make_net()
        net.run([[send(64, 1), send(64, 1)],
                 [compute(10 ** 6)], [], []])
        assert net.nics[1].buffered_messages == 2

    def test_per_source_queues_independent(self):
        net = make_net()
        net.run([[send(64, 2)],
                 [send(64, 2)],
                 [compute(10 ** 6)], []])
        nic = net.nics[2]
        assert nic.buffered_messages == 2
        # Each source has its own FIFO.
        assert len(nic._arrivals[0]) == 1
        assert len(nic._arrivals[1]) == 1


class TestCompletionSemantics:
    def test_sync_sender_unblocked_at_delivery(self):
        net = make_net()
        res = net.run([[send(4096, 1), compute(1)],
                       [compute(10 ** 6), recv(0)], [], []])
        # Sender finished long before the receiver's recv executed.
        assert res.activity[0].finish_time < 10 ** 6

    def test_async_sender_never_tracked(self):
        net = make_net(send_overhead=5.0)
        net.run([[asend(1 << 16, 1)], [recv(0)], [], []])
        assert not net.nics[0]._sync_events    # nothing left registered

    def test_sync_event_registry_drains(self):
        net = make_net()
        net.run([[send(64, 1)] * 5, [recv(0)] * 5, [], []])
        assert not net.nics[0]._sync_events


class TestStats:
    def test_summary_shape(self):
        net = make_net(send_overhead=10.0, recv_overhead=10.0)
        net.run([[send(100, 1)], [recv(0)], [], []])
        tx = net.nics[0].stats.summary()
        rx = net.nics[1].stats.summary()
        assert tx["messages_sent"] == 1
        assert tx["bytes_sent"] == 100
        assert rx["messages_received"] == 1
        assert rx["bytes_received"] == 100
        assert rx["recv_wait"]["count"] == 1

    def test_send_wait_records_latency(self):
        net = make_net()
        net.run([[send(8192, 1)], [recv(0)], [], []])
        wait = net.nics[0].stats.send_wait
        assert wait.count == 1
        assert wait.mean > 0

    def test_preposted_counter(self):
        net = make_net()
        net.run([[compute(10 ** 5), send(64, 1)],
                 [arecv(0)], [], []])
        assert net.nics[1].stats.pre_posted == 1


class TestWaiterOrdering:
    def test_multiple_pending_recvs_fifo(self):
        """Two queued receives from one source match arrivals in order."""
        net = make_net()
        log = []
        ops1 = [recv(0), recv(0)]
        payloads = iter(["first", "second"])
        net.sim.process(net.node_driver(
            0, iter([send(64, 1), send(64, 1)]),
            payload_source=lambda: next(payloads)))
        net.sim.process(net.node_driver(1, iter(ops1),
                                        result_sink=log.append))
        net.sim.process(net.node_driver(2, iter([])))
        net.sim.process(net.node_driver(3, iter([])))
        net.sim.run(check_deadlock=True)
        assert log == ["first", "second"]

    def test_recv_any_does_not_steal_specific_recv(self):
        """A specific recv posted before a recv_any gets its message."""
        from repro.commmodel import RecvAnyEvent
        net = make_net()
        log = []

        def observer(tag):
            def sink(value):
                log.append((tag, value))
            return sink

        # Node 0 posts recv(1) at t=0, then recv_any at the same time
        # via a second driver op; node 1 sends once.
        net.sim.process(net.node_driver(
            0, iter([recv(1)]), result_sink=observer("specific")))
        net.sim.process(net.node_driver(
            3, iter([RecvAnyEvent([1, 2])]), result_sink=observer("any")))
        net.sim.process(net.node_driver(1, iter([send(64, 0),
                                                 send(64, 3)])))
        net.sim.process(net.node_driver(2, iter([])))
        net.sim.run(check_deadlock=True)
        kinds = dict(log)
        assert "specific" in kinds          # recv(1) was satisfied
        assert kinds["any"][0] == 1         # recv_any saw node 1's send
