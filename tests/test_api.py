"""The instrumentation API: NodeContext, collectives, ThreadedApplication."""

from __future__ import annotations

import pytest

from repro.apps import ThreadedApplication
from repro.operations import (
    ArithType,
    MemType,
    OpCode,
    validate_trace_set,
)


def record(program, n_nodes=4):
    return ThreadedApplication(program, n_nodes).record()


class TestAnnotationsThroughContext:
    def test_loop_emits_backedges(self):
        def program(ctx):
            for _ in ctx.loop(range(5)):
                ctx.const()
        ts = record(program, 1)
        hist = ts[0].op_histogram()
        assert hist[OpCode.LOADC] == 5
        assert hist[OpCode.BRANCH] == 4      # n-1 back edges
        # Back edges recur at the same fetch address.
        branches = [op.address for op in ts[0]
                    if op.code is OpCode.BRANCH]
        assert len(set(branches)) == 1

    def test_function_decorator(self):
        def program(ctx):
            @ctx.function
            def helper():
                ctx.add(ArithType.INT)
            helper()
            helper()
        ts = record(program, 1)
        hist = ts[0].op_histogram()
        assert hist[OpCode.CALL] == 2
        assert hist[OpCode.RET] == 2

    def test_function_scope_isolated(self):
        def program(ctx):
            @ctx.function
            def helper():
                ctx.local_var("tmp", MemType.INT32)   # fresh scope each call
            helper()
            helper()   # would raise 'already declared' without scoping
        record(program, 1)

    def test_flops(self):
        def program(ctx):
            ctx.flops(10)
        ts = record(program, 1)
        assert ts[0].op_histogram()[OpCode.MUL] == 10

    def test_register_variable_emits_nothing(self):
        def program(ctx):
            i = ctx.local_var("i", MemType.INT32)
            ctx.read(i)
            ctx.write(i)
        ts = record(program, 1)
        assert len(ts[0]) == 0


class TestCollectives:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 8])
    def test_barrier_matches(self, n):
        def program(ctx):
            ctx.barrier()
        validate_trace_set(record(program, n))

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    @pytest.mark.parametrize("root", [0, 1])
    def test_broadcast_delivers_payload(self, n, root):
        if root >= n:
            pytest.skip("root outside machine")
        seen = {}

        def program(ctx):
            value = ctx.broadcast(root, 8,
                                  "tok" if ctx.node_id == root else None)
            seen[ctx.node_id] = value
        validate_trace_set(record(program, n))
        assert all(v == "tok" for v in seen.values())
        assert len(seen) == n

    @pytest.mark.parametrize("n", [1, 2, 4, 6])
    def test_reduce_to_root(self, n):
        results = {}

        def program(ctx):
            results[ctx.node_id] = ctx.reduce_to_root(
                0, 8, float(ctx.node_id + 1))
        validate_trace_set(record(program, n))
        assert results[0] == sum(range(1, n + 1))
        assert all(results[i] is None for i in range(1, n))


class TestThreadedApplication:
    def test_spmd_replication(self):
        def program(ctx):
            ctx.const()
        ts = record(program, 3)
        assert len(ts) == 3
        assert all(len(t) == 2 for t in ts)   # ifetch + loadc

    def test_mpmd_list(self):
        def a(ctx):
            ctx.send(1, 8)

        def b(ctx):
            ctx.recv(0)
        app = ThreadedApplication([a, b], 2)
        ts = app.record()
        assert ts[0].op_histogram()[OpCode.SEND] == 1
        assert ts[1].op_histogram()[OpCode.RECV] == 1

    def test_mpmd_wrong_count(self):
        with pytest.raises(ValueError):
            ThreadedApplication([lambda c: None], 2)

    def test_bad_n_nodes(self):
        with pytest.raises(ValueError):
            ThreadedApplication(lambda c: None, 0)

    def test_streams_are_fresh_each_call(self):
        def program(ctx):
            ctx.const()
        app = ThreadedApplication(program, 2)
        s1 = app.streams()
        s2 = app.streams()
        assert len(s1) == 2
        assert s1[0].thread is not s2[0].thread
        for s in s1 + s2:
            s.close()

    def test_node_identity(self):
        ids = []

        def program(ctx):
            ids.append((ctx.node_id, ctx.n_nodes))
        record(program, 3)
        assert sorted(ids) == [(0, 3), (1, 3), (2, 3)]
