"""Switching strategies: latency shapes, contention, packetization."""

from __future__ import annotations

import pytest

from repro.commmodel import MultiNodeModel
from repro.core.config import MachineConfig, NetworkConfig, TopologyConfig
from repro.operations import recv, send


def machine(switching: str, *, kind="mesh", dims=(8, 1), **net_kw
            ) -> MachineConfig:
    defaults = dict(
        link_bandwidth=4.0,
        link_latency=1.0,
        packet_bytes=10 ** 9,       # one packet per message by default
        header_bytes=8,
        flit_bytes=8,
        routing_cycles=2.0,
        send_overhead=0.0,
        recv_overhead=0.0,
    )
    defaults.update(net_kw)
    net = NetworkConfig(
        topology=TopologyConfig(kind=kind, dims=dims),
        switching=switching,
        routing="dimension_order",
        **defaults)
    return MachineConfig(name=f"sw-{switching}", network=net).validate()


def one_way_latency(switching: str, size: int, hops: int, **net_kw) -> float:
    """Measured single-message latency over `hops` hops on a ring."""
    m = machine(switching, dims=(hops + 1, 1), **net_kw)
    net = MultiNodeModel(m)
    streams: list[list] = [[] for _ in range(net.n_nodes)]
    streams[0] = [send(size, hops)]
    streams[hops] = [recv(0)]
    net.run(streams)
    return net.message_latency.mean


class TestUncontendedLatency:
    """Closed-form checks of the three switching disciplines."""

    SIZE = 1024     # payload bytes
    BW = 4.0
    HDR = 8
    RT = 2.0        # routing cycles
    LL = 1.0        # link latency

    def test_store_and_forward_formula(self):
        hops = 3
        total = self.SIZE + self.HDR
        expected = hops * (self.RT + total / self.BW + self.LL)
        assert one_way_latency("store_and_forward", self.SIZE, hops) == \
            pytest.approx(expected)

    def test_virtual_cut_through_formula(self):
        hops = 3
        body = self.SIZE
        expected = hops * (self.RT + self.HDR / self.BW + self.LL) \
            + body / self.BW
        assert one_way_latency("virtual_cut_through", self.SIZE, hops) == \
            pytest.approx(expected)

    def test_wormhole_formula(self):
        hops = 3
        flit = 8
        total = self.SIZE + self.HDR
        expected = hops * (self.RT + flit / self.BW + self.LL) \
            + (total - flit) / self.BW
        assert one_way_latency("wormhole", self.SIZE, hops) == \
            pytest.approx(expected)

    def test_pipelining_beats_store_and_forward_multihop(self):
        saf = one_way_latency("store_and_forward", 4096, 4)
        vct = one_way_latency("virtual_cut_through", 4096, 4)
        wh = one_way_latency("wormhole", 4096, 4)
        assert vct < saf
        assert wh < saf

    def test_single_hop_saf_equals_vct_bodywise(self):
        saf = one_way_latency("store_and_forward", 4096, 1)
        vct = one_way_latency("virtual_cut_through", 4096, 1)
        assert vct == pytest.approx(saf)

    def test_latency_affine_in_size(self):
        lat = [one_way_latency("wormhole", s, 2) for s in (1000, 2000, 3000)]
        assert lat[2] - lat[1] == pytest.approx(lat[1] - lat[0])


class TestPacketization:
    def test_message_split_into_packets(self):
        m = machine("store_and_forward", dims=(3, 1), packet_bytes=256)
        net = MultiNodeModel(m)
        streams = [[send(1000, 1)], [recv(0)], []]
        net.run(streams)
        # ceil(1000/256) = 4 packets.
        assert net.engine.packet_latency.count == 4

    def test_zero_byte_message_single_packet(self):
        m = machine("wormhole", dims=(3, 1))
        net = MultiNodeModel(m)
        net.run([[send(0, 1)], [recv(0)], []])
        assert net.engine.packet_latency.count == 1
        assert net.engine.messages_delivered == 1

    def test_packet_pipelining_overlaps(self):
        """Many small packets through SAF should pipeline across hops:
        faster than the serial sum over (hops x packets)."""
        m = machine("store_and_forward", dims=(4, 1), packet_bytes=128)
        net = MultiNodeModel(m)
        net.run([[send(1024, 3)], [], [], [recv(0)]])
        per_hop = 2.0 + (128 + 8) / 4.0 + 1.0
        n_packets = 8
        hops = 3
        serial = n_packets * hops * per_hop
        pipelined_bound = (hops + n_packets) * per_hop
        assert net.sim.now < serial
        assert net.sim.now <= pipelined_bound * 1.1


class TestContention:
    def test_shared_link_serializes(self):
        """Two flows crossing one link take ~2x one flow."""
        def run_flows(n_flows: int) -> float:
            m = machine("store_and_forward", kind="star", dims=(4,),
                        packet_bytes=10 ** 9)
            # star: all traffic crosses the hub (node 0).
            net = MultiNodeModel(m)
            streams: list[list] = [[] for _ in range(4)]
            for f in range(n_flows):
                streams[1 + f] = [send(4096, 3)]
            streams[3] = [recv(1 + f) for f in range(n_flows)]
            net.run(streams)
            return net.sim.now

        t1 = run_flows(1)
        t2 = run_flows(2)
        # First hops (1->0, 2->0) are disjoint; the shared hub link
        # (0->3) serializes, adding one full packet time: ~1.5x total.
        assert t2 > 1.4 * t1

    def test_wormhole_blocks_holding_path(self):
        """A blocked worm holds upstream links: a third flow that shares
        them is delayed even though its own destination link is free."""
        m = machine("wormhole", dims=(6, 1), packet_bytes=10 ** 9)
        net = MultiNodeModel(m)
        streams: list[list] = [[] for _ in range(6)]
        # Flow A: 0->3 (long message saturating links 0-1-2-3).
        streams[0] = [send(8192, 3)]
        streams[3] = [recv(0)]
        # Flow B: 1->2 shares link 1->2 with the worm.
        streams[1] = [send(64, 2)]
        streams[2] = [recv(1)]
        net.run(streams)
        # B's tiny message (the faster of the two) must still exceed its
        # uncontended latency: the worm held the shared link.
        uncontended = one_way_latency("wormhole", 64, 1)
        assert net.message_latency.count == 2
        assert net.message_latency.min > uncontended * 0.99


class TestVirtualChannels:
    def test_wormhole_ring_all_to_all_completes(self):
        """Without dateline VCs this cyclic pattern can deadlock."""
        m = machine("wormhole", kind="ring", dims=(6,), packet_bytes=10 ** 9)
        net = MultiNodeModel(m)
        n = 6
        streams = []
        for me in range(n):
            ops = []
            for r in range(1, n):
                ops.append(send(512, (me + r) % n))
                ops.append(recv((me - r) % n))
            streams.append(ops)
        res = net.run(streams)
        assert res.messages_delivered == n * (n - 1)

    def test_wormhole_torus_exchange_completes(self):
        m = machine("wormhole", kind="torus", dims=(4, 4),
                    packet_bytes=10 ** 9)
        net = MultiNodeModel(m)
        n = 16
        streams = []
        for me in range(n):
            partner = (me + 8) % n
            streams.append([send(1024, partner), recv(partner)])
        res = net.run(streams)
        assert res.messages_delivered == n


class TestErrors:
    def test_self_send_rejected(self):
        m = machine("wormhole", dims=(3, 1))
        net = MultiNodeModel(m)
        with pytest.raises(Exception):
            net.run([[send(64, 0)], [], []])
