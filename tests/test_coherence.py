"""Snoopy MSI/MESI protocol: transitions, traffic, invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import (CacheConfig,
                               CacheLevelConfig,
                               ConfigError,
                               NodeConfig)
from repro.compmodel import LineState
from repro.operations import MemType, load, store
from repro.sharedmem import SMPNodeModel


def make_smp(n_cpus=2, protocol="mesi", **node_kw) -> SMPNodeModel:
    cfg = NodeConfig(
        n_cpus=n_cpus,
        coherence=protocol,
        cache_levels=[CacheLevelConfig(data=CacheConfig(
            size_bytes=512, line_bytes=32, associativity=2))],
        **node_kw)
    return SMPNodeModel(cfg)


def run(smp: SMPNodeModel, *traces):
    return smp.run_traces(list(traces))


L = lambda a: load(MemType.INT64, a)
S = lambda a: store(MemType.INT64, a)


class TestMESITransitions:
    def test_first_read_loads_exclusive(self):
        smp = make_smp()
        run(smp, [L(0x100)], [])
        assert smp.dcaches[0].probe(0x100) is LineState.EXCLUSIVE

    def test_second_reader_demotes_to_shared(self):
        smp = make_smp()
        run(smp, [L(0x100)], [L(0x100)])
        assert smp.dcaches[0].probe(0x100) is LineState.SHARED
        assert smp.dcaches[1].probe(0x100) is LineState.SHARED

    def test_write_to_exclusive_is_silent(self):
        smp = make_smp()
        run(smp, [L(0x100), S(0x100)], [])
        assert smp.dcaches[0].probe(0x100) is LineState.MODIFIED
        # One BusRd only; the E->M upgrade needs no transaction.
        assert smp.coherence.stats.transactions == 1

    def test_write_to_shared_needs_upgrade(self):
        smp = make_smp()
        # CPU0's intervening miss on 0x200 lets CPU1's BusRd demote
        # CPU0's copy of 0x100 to SHARED before CPU0 writes it.
        run(smp, [L(0x100), L(0x200), S(0x100)], [L(0x100)])
        stats = smp.coherence.stats
        assert stats.bus_upgr >= 1
        assert stats.invalidations >= 1

    def test_write_miss_invalidates_all(self):
        smp = make_smp(n_cpus=3)
        run(smp, [L(0x100)], [L(0x100)], [S(0x100)])
        assert smp.dcaches[2].probe(0x100) is LineState.MODIFIED
        assert not smp.dcaches[0].contains(0x100)
        assert not smp.dcaches[1].contains(0x100)

    def test_dirty_line_supplied_cache_to_cache(self):
        smp = make_smp()
        run(smp, [S(0x100)], [L(0x100)])
        stats = smp.coherence.stats
        assert stats.cache_to_cache >= 1
        # After the flush both copies are SHARED.
        assert smp.dcaches[0].probe(0x100) is LineState.SHARED
        assert smp.dcaches[1].probe(0x100) is LineState.SHARED


class TestMSI:
    def test_msi_never_exclusive(self):
        smp = make_smp(protocol="msi")
        run(smp, [L(0x100)], [])
        assert smp.dcaches[0].probe(0x100) is LineState.SHARED

    def test_msi_private_write_pays_upgrade(self):
        """The MESI advantage: read-then-write of private data is silent
        under MESI but costs a BusUpgr under MSI."""
        msi = make_smp(protocol="msi")
        run(msi, [L(0x100), S(0x100)], [])
        mesi = make_smp(protocol="mesi")
        run(mesi, [L(0x100), S(0x100)], [])
        assert msi.coherence.stats.transactions == 2
        assert mesi.coherence.stats.transactions == 1


class TestProtocolInvariants:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 2),              # cpu
                  st.integers(0, 7),              # line index
                  st.booleans()),                 # is_write
        min_size=1, max_size=120))
    def test_single_writer_multiple_readers(self, accesses):
        smp = make_smp(n_cpus=3)
        traces = [[], [], []]
        for cpu, line, is_write in accesses:
            addr = 0x1000 + line * 32
            traces[cpu].append(S(addr) if is_write else L(addr))
        run(smp, *traces)
        # Invariant: per line, at most one M/E copy; M/E excludes others.
        lines = {0x1000 + i * 32 for i in range(8)}
        for addr in lines:
            states = [c.probe(addr) for c in smp.dcaches]
            exclusive = [s for s in states
                         if s in (LineState.MODIFIED, LineState.EXCLUSIVE)]
            valid = [s for s in states if s.is_valid]
            if exclusive:
                assert len(exclusive) == 1
                assert len(valid) == 1

    def test_total_time_exceeds_serial_busy(self):
        smp = make_smp()
        res = run(smp, [S(0x100)] * 10, [S(0x100)] * 10)
        # Ping-ponging a line is slower than either trace alone.
        assert res.total_cycles > 10


class TestConfigErrors:
    def test_write_through_private_l1_rejected(self):
        cfg = NodeConfig(
            n_cpus=2,
            cache_levels=[CacheLevelConfig(data=CacheConfig(
                write_policy="write-through"))])
        with pytest.raises(ConfigError, match="write-back"):
            SMPNodeModel(cfg)

    def test_no_cache_rejected(self):
        with pytest.raises(ConfigError):
            SMPNodeModel(NodeConfig(n_cpus=1, cache_levels=[]))
