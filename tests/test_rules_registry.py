"""The rule-id registry: one table, globally unique, nothing unregistered.

``repro.check.diagnostics.RULES`` is the single registry of every rule
id any tool in the workbench can emit.  These tests pin that contract:
ids are well-formed, every family prefix is documented in
``RULE_FAMILIES``, every pass declares only registered rules, and no
``Diagnostic`` construction site anywhere in the source tree uses a
rule-id literal that the registry does not know about.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.bounds.passes import BOUNDS_PASSES
from repro.check import (
    DESCRIPTION_PASSES,
    LINT_PASSES,
    MACHINE_PASSES,
    RULE_FAMILIES,
    RULES,
    TRACE_PASSES,
    rule_family,
)

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

_RULE_ID = re.compile(r"^[A-Z]{2}\d{3}$")
#: A quoted rule-id literal anywhere in source ("PB001", 'TR004', ...).
_RULE_LITERAL = re.compile(r"""["']([A-Z]{2}\d{3})["']""")

ALL_PASS_COLLECTIONS = {
    "TRACE_PASSES": TRACE_PASSES,
    "MACHINE_PASSES": MACHINE_PASSES,
    "DESCRIPTION_PASSES": DESCRIPTION_PASSES,
    "LINT_PASSES": LINT_PASSES,
    "BOUNDS_PASSES": BOUNDS_PASSES,
}


class TestRegistryShape:
    def test_every_id_well_formed(self):
        for rule in RULES:
            assert _RULE_ID.match(rule), f"malformed rule id {rule!r}"

    def test_every_description_nonempty(self):
        for rule, desc in RULES.items():
            assert desc.strip(), f"{rule} has no description"

    def test_every_family_documented(self):
        for rule in RULES:
            family = rule_family(rule)
            assert family in RULE_FAMILIES, (
                f"{rule}: family {family!r} missing from RULE_FAMILIES")

    def test_no_orphan_families(self):
        used = {rule_family(rule) for rule in RULES}
        assert set(RULE_FAMILIES) == used

    def test_rule_family_strips_digits(self):
        assert rule_family("PB001") == "PB"
        assert rule_family("TR006") == "TR"


class TestPassDeclarations:
    def test_every_pass_rule_registered(self):
        for name, passes in ALL_PASS_COLLECTIONS.items():
            for p in passes:
                assert p.rules, f"{name}: pass {p.name} declares no rules"
                for rule in p.rules:
                    assert rule in RULES, (
                        f"{name}: pass {p.name} declares unregistered "
                        f"rule {rule}")

    def test_bounds_passes_cover_pb002(self):
        declared = {r for p in BOUNDS_PASSES for r in p.rules}
        assert "PB002" in declared


class TestNoUnregisteredLiterals:
    def test_every_source_literal_registered(self):
        """Any string literal shaped like a rule id must be in RULES.

        This is the cheap global net: a new pass (or an ad-hoc
        ``Diagnostic(rule="XY001", ...)``) cannot ship an id the
        registry — and hence ``repro check --rules``, the README table,
        and the JSON family counters — does not know about.
        """
        unregistered = []
        for path in sorted(SRC.rglob("*.py")):
            for lineno, line in enumerate(
                    path.read_text().splitlines(), start=1):
                for rule in _RULE_LITERAL.findall(line):
                    if rule not in RULES:
                        unregistered.append(
                            f"{path.relative_to(SRC)}:{lineno}: {rule}")
        assert not unregistered, (
            "rule-id literals missing from RULES:\n  "
            + "\n  ".join(unregistered))
