"""Trace containers: sequences, statistics, file round-trips, streams."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.operations import (ArithType,
                              MemType,
                              OpCode,
                              Trace,
                              TraceSet,
                              TraceStream,
                              add,
                              compute,
                              ifetch,
                              load,
                              recv,
                              send,
                              store,
                              trace_mix)


def sample_ops():
    return [ifetch(0x400000), load(MemType.FLOAT64, 0x1000),
            add(ArithType.DOUBLE), store(MemType.FLOAT64, 0x1008),
            send(256, 1), compute(100.0)]


class TestTrace:
    def test_sequence_protocol(self):
        t = Trace(0, sample_ops())
        assert len(t) == 6
        assert t[0].code is OpCode.IFETCH
        assert list(t)[-1].code is OpCode.COMPUTE
        sliced = t[1:3]
        assert isinstance(sliced, Trace) and len(sliced) == 2

    def test_append_extend(self):
        t = Trace(2)
        t.append(ifetch(0))
        t.extend([add(), add()])
        assert len(t) == 3 and t.node == 2

    def test_histogram_and_counts(self):
        t = Trace(0, sample_ops())
        hist = t.op_histogram()
        assert hist[OpCode.IFETCH] == 1
        assert hist[OpCode.SEND] == 1
        assert t.computational_count == 4
        assert t.communication_count == 2
        assert t.bytes_sent == 256

    def test_trace_mix_sums_to_one(self):
        mix = trace_mix(Trace(0, sample_ops()))
        assert sum(mix.values()) == pytest.approx(1.0)
        assert trace_mix(Trace(0)) == {}

    def test_equality(self):
        assert Trace(0, sample_ops()) == Trace(0, sample_ops())
        assert Trace(0, sample_ops()) != Trace(1, sample_ops())

    def test_save_load_round_trip(self, tmp_path):
        t = Trace(3, sample_ops())
        path = str(tmp_path / "trace.npz")
        t.save(path)
        loaded = Trace.load(path)
        assert loaded == t

    @given(st.lists(st.sampled_from([
        ifetch(4), load(MemType.INT32, 8), add(ArithType.INT),
        send(64, 1), recv(1), compute(5.5)]), max_size=60))
    def test_array_round_trip_property(self, ops):
        t = Trace(0, ops)
        again = Trace.from_arrays(0, t.to_arrays())
        assert again == t


class TestTraceSet:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            TraceSet([Trace(1), Trace(0)])

    def test_from_lists(self):
        ts = TraceSet.from_lists([[ifetch(0)], [add()], []])
        assert len(ts) == 3
        assert ts[1][0].code is OpCode.ADD
        assert ts.total_ops == 2

    def test_histogram_aggregates(self):
        ts = TraceSet.from_lists([[add(), add()], [add()]])
        assert ts.op_histogram()[OpCode.ADD] == 3

    def test_save_load_round_trip(self, tmp_path):
        ts = TraceSet.from_lists([sample_ops(), [], [compute(1.0)]])
        path = str(tmp_path / "traces.npz")
        ts.save(path)
        loaded = TraceSet.load(path)
        assert len(loaded) == 3
        for a, b in zip(loaded, ts):
            assert a == b


class TestTraceStream:
    def test_iterates_and_counts(self):
        stream = TraceStream(0, iter(sample_ops()))
        ops = list(stream)
        assert len(ops) == 6
        assert stream.consumed == 6

    def test_materialize(self):
        stream = TraceStream(1, iter(sample_ops()))
        next(stream)   # consume one
        t = stream.materialize()
        assert t.node == 1
        assert len(t) == 5
        assert stream.consumed == 6

    def test_single_use(self):
        stream = TraceStream(0, iter([add()]))
        assert list(stream) == [add()]
        assert list(stream) == []
