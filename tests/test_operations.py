"""Operation factories, accessors and categories (Table 1)."""

from __future__ import annotations

import pytest

from repro.operations import (
    ARITHMETIC_OPS,
    COMMUNICATION_OPS,
    COMPUTATIONAL_OPS,
    CONTROL_OPS,
    GLOBAL_EVENT_OPS,
    MEMORY_OPS,
    ArithType,
    MemType,
    OpCode,
    Operation,
    add,
    arecv,
    asend,
    branch,
    call,
    compute,
    div,
    ifetch,
    load,
    load_const,
    mul,
    recv,
    ret,
    send,
    store,
    sub,
)


class TestFactories:
    def test_load_store(self):
        op = load(MemType.FLOAT64, 0x1000)
        assert op.code is OpCode.LOAD
        assert op.mem_type is MemType.FLOAT64
        assert op.address == 0x1000
        op = store(MemType.INT32, 64)
        assert op.code is OpCode.STORE and op.address == 64

    def test_load_const(self):
        op = load_const(MemType.FLOAT32)
        assert op.code is OpCode.LOADC
        assert op.mem_type is MemType.FLOAT32

    @pytest.mark.parametrize("factory,code", [
        (add, OpCode.ADD), (sub, OpCode.SUB), (mul, OpCode.MUL),
        (div, OpCode.DIV)])
    def test_arithmetic(self, factory, code):
        op = factory(ArithType.DOUBLE)
        assert op.code is code
        assert op.arith_type is ArithType.DOUBLE

    @pytest.mark.parametrize("factory,code", [
        (ifetch, OpCode.IFETCH), (branch, OpCode.BRANCH),
        (call, OpCode.CALL), (ret, OpCode.RET)])
    def test_control(self, factory, code):
        op = factory(0x400)
        assert op.code is code and op.address == 0x400

    def test_send_recv(self):
        op = send(4096, 3)
        assert op.code is OpCode.SEND
        assert op.size == 4096 and op.peer == 3
        op = recv(7)
        assert op.code is OpCode.RECV and op.peer == 7

    def test_async_pair(self):
        op = asend(128, 1)
        assert op.code is OpCode.ASEND
        assert op.size == 128 and op.peer == 1
        op = arecv(0)
        assert op.code is OpCode.ARECV and op.peer == 0

    def test_compute(self):
        op = compute(1234.5)
        assert op.code is OpCode.COMPUTE
        assert op.duration == 1234.5

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            send(-1, 0)
        with pytest.raises(ValueError):
            asend(-5, 0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            compute(-1.0)


class TestCategories:
    def test_partition_complete(self):
        all_codes = set(OpCode)
        assert COMPUTATIONAL_OPS | COMMUNICATION_OPS == all_codes
        assert not (COMPUTATIONAL_OPS & COMMUNICATION_OPS)

    def test_subcategories(self):
        assert MEMORY_OPS <= COMPUTATIONAL_OPS
        assert ARITHMETIC_OPS <= COMPUTATIONAL_OPS
        assert CONTROL_OPS <= COMPUTATIONAL_OPS
        assert GLOBAL_EVENT_OPS <= COMMUNICATION_OPS
        assert OpCode.COMPUTE not in GLOBAL_EVENT_OPS

    def test_is_global_event(self):
        assert send(1, 0).is_global_event
        assert recv(0).is_global_event
        assert not compute(5).is_global_event
        assert not load(MemType.INT32, 0).is_global_event

    def test_is_communication(self):
        assert compute(5).is_communication
        assert not ifetch(0).is_communication


class TestValueSemantics:
    def test_equality_and_hash(self):
        a = load(MemType.INT32, 0x10)
        b = load(MemType.INT32, 0x10)
        c = load(MemType.INT64, 0x10)
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != "not-an-op"

    def test_tuple_round_trip(self):
        ops = [load(MemType.FLOAT64, 0x20), send(77, 2), compute(3.5),
               add(ArithType.FLOAT), ifetch(0x400000)]
        for op in ops:
            assert Operation.from_tuple(op.to_tuple()) == op

    def test_repr_readable(self):
        assert "load" in repr(load(MemType.INT32, 0x10))
        assert "dest=3" in repr(send(64, 3))
        assert "source=1" in repr(recv(1))
        assert "compute" in repr(compute(10))
        assert "ADD" not in repr(add())  # lower-cased name, type shown
        assert "INT" in repr(add())


class TestMemTypes:
    def test_sizes(self):
        assert MemType.INT8.nbytes == 1
        assert MemType.INT16.nbytes == 2
        assert MemType.INT32.nbytes == 4
        assert MemType.INT64.nbytes == 8
        assert MemType.FLOAT32.nbytes == 4
        assert MemType.FLOAT64.nbytes == 8

    def test_float_flags(self):
        assert MemType.FLOAT32.is_float and MemType.FLOAT64.is_float
        assert not MemType.INT32.is_float
        assert ArithType.FLOAT.is_float and ArithType.DOUBLE.is_float
        assert not ArithType.INT.is_float
