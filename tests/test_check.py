"""The ``repro check`` static analyzer.

Covers the diagnostic vocabulary, the pass manager, all four analyzer
families (trace / machine / description / determinism-sanitizer), the
three integration layers (CLI, ``Sweep.run`` pre-flight, lint-clean
bundled artifacts), the golden broken-trio snapshot, and the hypothesis
property that the static deadlock verdict agrees with the synchronous
communication model.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Sweep, Workbench, generic_multicomputer, t805_grid
from repro.check import (
    CheckContext,
    CheckError,
    Diagnostic,
    DeterminismSanitizer,
    PassManager,
    RULES,
    Report,
    Severity,
    check_description,
    check_machine,
    check_traces,
    ensure_ok,
)
from repro.check.machine_passes import RoutingValidityPass
from repro.cli import PRESETS, main
from repro.operations import (
    OpCode,
    Operation,
    TraceSet,
    ValidationError,
    arecv,
    asend,
    recv,
    send,
    validate_trace_set,
)
from repro.pearl import DeadlockError, Resource
from repro.pearl.channel import Channel
from repro.tracegen import WORKLOAD_CLASSES, StochasticAppDescription
from repro.tracegen.descriptions import InstructionMix

GOLDEN_DIR = Path(__file__).parent / "golden"


def check_golden(name: str, value) -> None:
    path = GOLDEN_DIR / f"{name}.json"
    if os.environ.get("REPRO_REGEN_GOLDEN") or not path.exists():
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(value, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"golden snapshot {name} (re)generated")
    golden = json.loads(path.read_text())
    assert value == golden, (
        f"{name}: diagnostics diverged from the golden snapshot; if the "
        f"analyzer's rules changed on purpose, regenerate with "
        f"REPRO_REGEN_GOLDEN=1")


def cyclic_traces(n: int = 3) -> TraceSet:
    """Every node receives from its left neighbour *before* sending
    right: counts match perfectly, order deadlocks."""
    return TraceSet.from_lists([
        [recv((i - 1) % n), send(64, (i + 1) % n)] for i in range(n)
    ])


# ---------------------------------------------------------------------------
# Diagnostics vocabulary
# ---------------------------------------------------------------------------

class TestDiagnostics:
    def test_severity_ordering(self):
        assert Severity.NOTE < Severity.WARNING < Severity.ERROR
        assert str(Severity.ERROR) == "error"

    def test_format_includes_rule_subject_location_hint(self):
        d = Diagnostic(rule="TR005", severity=Severity.ERROR, message="boom",
                       subject="ts", location="node 1", hint="fix it")
        text = d.format()
        assert "error: TR005" in text
        assert "[ts]" in text and "(node 1)" in text and "fix it" in text

    def test_report_ok_only_fails_on_errors(self):
        r = Report(subject="x")
        r.add(Diagnostic(rule="MC004", severity=Severity.WARNING, message="w"))
        assert r.ok and len(r.warnings) == 1
        r.add(Diagnostic(rule="MC001", severity=Severity.ERROR, message="e"))
        assert not r.ok and len(r.errors) == 1

    def test_report_json_round_trips(self):
        r = Report(subject="x", diagnostics=[
            Diagnostic(rule="TR004", severity=Severity.ERROR, message="m")])
        data = json.loads(r.to_json())
        assert data["ok"] is False
        assert data["diagnostics"][0]["rule"] == "TR004"

    def test_by_rule_prefix(self):
        r = Report(diagnostics=[
            Diagnostic(rule="TR001", severity=Severity.ERROR, message="a"),
            Diagnostic(rule="MC002", severity=Severity.ERROR, message="b")])
        assert [d.rule for d in r.by_rule("TR")] == ["TR001"]

    def test_every_emittable_rule_is_documented(self):
        from repro.check import (DESCRIPTION_PASSES, LINT_PASSES,
                                 MACHINE_PASSES, TRACE_PASSES)
        for p in (*TRACE_PASSES, *MACHINE_PASSES, *DESCRIPTION_PASSES,
                  *LINT_PASSES):
            for rule in p.rules:
                assert rule in RULES, f"{p.name} emits undocumented {rule}"

    def test_ensure_ok_raises_check_error(self):
        bad = Report(diagnostics=[
            Diagnostic(rule="MC001", severity=Severity.ERROR, message="m")])
        with pytest.raises(CheckError) as err:
            ensure_ok(bad)
        assert err.value.report is bad
        assert "MC001" in str(err.value)


class TestPassManager:
    def test_gating_pass_stops_pipeline(self):
        ran = []

        class Gate:
            name, rules, gating = "gate", ("TR001",), True

            def run(self, ctx):
                ran.append("gate")
                return [ctx.diag("TR001", Severity.ERROR, "stop")]

        class Later:
            name, rules, gating = "later", ("TR004",), False

            def run(self, ctx):
                ran.append("later")
                return []

        report = PassManager([Gate(), Later()]).run(CheckContext(subject="s"))
        assert ran == ["gate"]
        assert not report.ok

    def test_non_gating_errors_continue(self):
        class Soft:
            name, rules, gating = "soft", ("TR004",), False

            def run(self, ctx):
                return [ctx.diag("TR004", Severity.ERROR, "e")]

        class After:
            name, rules, gating = "after", ("TR005",), False

            def run(self, ctx):
                assert ctx.has_error("TR004")
                return []

        report = PassManager([Soft(), After()]).run(CheckContext())
        assert len(report.errors) == 1


# ---------------------------------------------------------------------------
# Trace passes
# ---------------------------------------------------------------------------

class TestTracePasses:
    def test_structural_errors(self):
        ts = TraceSet.from_lists([
            # Factories reject bad values eagerly, so build raw Operations
            # the way a buggy translator or corrupted trace file would.
            [Operation(OpCode.SEND, 0, 1, -1.0), send(64, 0), recv(9)],
            [Operation(OpCode.COMPUTE, 0, 0, -5.0)],
        ])
        report = check_traces(ts)
        rules = sorted(d.rule for d in report.errors)
        assert rules == ["TR001", "TR001", "TR002", "TR003"]

    def test_matched_counts(self):
        ts = TraceSet.from_lists([[send(64, 1)], []])
        report = check_traces(ts)
        assert [d.rule for d in report.errors] == ["TR004"]
        assert "unmatched communication 0->1" in report.errors[0].message

    def test_cyclic_sync_deadlock_tr005(self):
        report = check_traces(cyclic_traces(3))
        assert [d.rule for d in report.errors] == ["TR005"]
        msg = report.errors[0].message
        assert "cyclic wait" in msg and "node 0" in msg

    def test_deadlock_free_order_passes(self):
        n = 3
        ts = TraceSet.from_lists([
            [send(64, (i + 1) % n), recv((i - 1) % n)] for i in range(n)
        ])
        assert check_traces(ts).ok

    def test_transitively_blocked_tr006(self):
        # nodes 0/1 deadlock pairwise; node 2 waits behind node 1.
        ts = TraceSet.from_lists([
            [recv(1), send(64, 1)],
            [recv(0), send(64, 0), send(64, 2)],
            [recv(1)],
        ])
        report = check_traces(ts)
        rules = sorted(d.rule for d in report.errors)
        assert rules == ["TR005", "TR006"]
        tr006 = report.by_rule("TR006")[0]
        assert "transitively blocked" in tr006.message

    def test_arecv_prepost_demotes_to_warning(self):
        ts = TraceSet.from_lists([
            [arecv(1), recv(1), send(8, 1)],
            [send(8, 0), recv(0), send(8, 0)],
        ])
        report = check_traces(ts)
        assert report.ok                      # warnings only
        assert report.warnings, "stall under pre-posting should warn"
        assert {d.rule for d in report.warnings} <= {"TR005", "TR006"}

    def test_async_pairs_never_deadlock(self):
        ts = TraceSet.from_lists([
            [asend(64, 1), arecv(1)],
            [arecv(0), asend(32, 0)],
        ])
        assert check_traces(ts).ok

    def test_ghost_peer_gates_deadlock_pass(self):
        ts = TraceSet.from_lists([[recv(7)]])
        report = check_traces(ts)
        assert {d.rule for d in report.errors} == {"TR003"}


# ---------------------------------------------------------------------------
# Machine passes
# ---------------------------------------------------------------------------

class TestMachinePasses:
    def test_contract_violation_mc001(self):
        m = t805_grid(2, 2)
        m.network.flit_bytes = -8
        report = check_machine(m)
        assert [d.rule for d in report.errors] == ["MC001"]

    def test_contract_gates_later_passes(self):
        m = t805_grid(2, 2)
        m.network.topology.kind = "no-such-topology"
        report = check_machine(m)
        assert {d.rule for d in report.errors} == {"MC001"}

    def test_routing_validity_flags_broken_paths(self, monkeypatch):
        import repro.commmodel.routing as routing_mod

        class BrokenRouting:
            def path(self, src, dst):
                return [src, src]             # never reaches dst

        monkeypatch.setattr(routing_mod, "make_routing",
                            lambda kind, topo, seed=0: BrokenRouting())
        report = Report()
        ctx = CheckContext(machine=t805_grid(2, 2))
        report.extend(RoutingValidityPass().run(ctx))
        assert report.by_rule("MC003")
        assert "does not" in report.by_rule("MC003")[0].message

    def test_path_problem_detects_each_defect(self):
        from repro.topology import build_topology
        from repro.core.config import TopologyConfig
        topo = build_topology(TopologyConfig(kind="ring", dims=(4,)))
        problem = RoutingValidityPass._path_problem
        assert problem(topo, 0, 2, [1, 2]) == "does not start at source 0"
        assert problem(topo, 0, 2, [0, 1]) == "does not end at destination 2"
        assert "revisits" in problem(topo, 0, 2, [0, 1, 0, 1, 2])
        assert "nonexistent link" in problem(topo, 0, 2, [0, 2])
        assert problem(topo, 0, 2, [0, 1, 2]) == ""

    def test_parameter_consistency_mc004_warns(self):
        m = t805_grid(2, 2)
        m.network.flit_bytes = m.network.packet_bytes * 4
        report = check_machine(m)
        assert report.ok                      # warnings never fail
        assert report.by_rule("MC004")

    def test_routing_clean_on_every_preset(self):
        for name, factory in PRESETS.items():
            report = check_machine(factory())
            assert report.ok, f"{name}: {report.format()}"


# ---------------------------------------------------------------------------
# Description passes
# ---------------------------------------------------------------------------

class TestDescriptionPasses:
    def test_contract_violation_ad001(self):
        desc = StochasticAppDescription(loopback_prob=1.5)
        report = check_description(desc)
        assert [d.rule for d in report.errors] == ["AD001"]

    def test_negative_mix_weight_ad002(self):
        desc = StochasticAppDescription(mix=InstructionMix(load=-0.1))
        report = check_description(desc)
        assert [d.rule for d in report.errors] == ["AD002"]

    def test_branch_mass_ad003(self):
        desc = StochasticAppDescription(loopback_prob=0.8, far_jump_prob=0.4)
        report = check_description(desc)
        assert [d.rule for d in report.errors] == ["AD003"]

    def test_unreachable_blocks_ad004(self):
        desc = StochasticAppDescription(loopback_prob=1.0, far_jump_prob=0.0)
        report = check_description(desc)
        assert report.ok
        assert report.by_rule("AD004")

    def test_node_count_ad005(self):
        desc = StochasticAppDescription()
        single = check_description(desc, n_nodes=1)
        assert single.ok and single.by_rule("AD005")
        odd = check_description(desc, n_nodes=5)
        assert odd.by_rule("AD005")[0].severity is Severity.NOTE
        assert not check_description(desc, n_nodes=4).by_rule("AD005")


# ---------------------------------------------------------------------------
# Determinism sanitizer
# ---------------------------------------------------------------------------

class TestSanitizer:
    def test_same_time_resource_contention_kd001(self, sim):
        res = Resource(sim, capacity=1, name="bus")
        san = DeterminismSanitizer()
        sim.attach_sanitizer(san)

        def worker():
            yield res.acquire()
            yield 5.0
            res.release()

        sim.process(worker())
        sim.process(worker())
        sim.run()
        report = san.report()
        assert report.ok                      # warnings only
        kd = report.by_rule("KD001")
        assert kd and "bus" in kd[0].message

    def test_staggered_requests_are_clean(self, sim):
        res = Resource(sim, capacity=1, name="bus")
        san = DeterminismSanitizer()
        sim.attach_sanitizer(san)

        def worker(delay):
            yield delay
            yield res.acquire()
            yield 1.0
            res.release()

        sim.process(worker(0.0))
        sim.process(worker(10.0))
        sim.run()
        assert not san.report().diagnostics

    def test_same_time_channel_sends_kd002(self, sim):
        chan = Channel(sim, capacity=None, name="pipe")
        san = DeterminismSanitizer()
        sim.attach_sanitizer(san)

        def sender(value):
            yield chan.send(value)

        sim.process(sender(1))
        sim.process(sender(2))
        sim.run()
        kd = san.report().by_rule("KD002")
        assert kd and "pipe" in kd[0].message

    def test_finding_cap_counts_suppressed(self, sim):
        res = Resource(sim, capacity=1, name="r")
        san = DeterminismSanitizer(max_findings=1)
        sim.attach_sanitizer(san)

        def clash():
            yield res.acquire()
            yield 1.0
            res.release()

        for t in (0.0, 10.0):
            def burst(start=t):
                yield start
                yield from clash()
            sim.process(burst())
            sim.process(burst())
        sim.run()
        san.finish()
        assert len(san.diagnostics) == 1 and san.suppressed == 1

    def test_detached_simulation_unaffected(self, sim):
        res = Resource(sim, capacity=1, name="r")

        def worker():
            yield res.acquire()
            yield 1.0
            res.release()

        sim.process(worker())
        sim.process(worker())
        sim.run()                             # no sanitizer: no crash
        assert res.acquisitions == 2

    def test_findings_name_time_and_processes(self, sim):
        res = Resource(sim, capacity=1, name="bus")
        san = DeterminismSanitizer()
        sim.attach_sanitizer(san)

        def worker():
            yield 3.0
            yield res.acquire()
            yield 5.0
            res.release()

        sim.process(worker(), name="alice")
        sim.process(worker(), name="bob")
        sim.run()
        (kd,) = san.report().by_rule("KD001")
        assert "t=3" in kd.message
        assert "alice" in kd.message and "bob" in kd.message

    def test_repeated_clusters_deduplicated(self, sim):
        res = Resource(sim, capacity=1, name="bus")
        san = DeterminismSanitizer()
        sim.attach_sanitizer(san)

        def worker():
            for _ in range(4):                # same (obj, procs) clash
                yield 10.0                    # at t=10, 20, 30, 40
                yield res.acquire()
                res.release()

        sim.process(worker(), name="alice")
        sim.process(worker(), name="bob")
        sim.run()
        report = san.report()
        kd = report.by_rule("KD001")
        warnings = [d for d in kd if d.severity is Severity.WARNING]
        notes = [d for d in kd if d.severity is Severity.NOTE]
        assert len(warnings) == 1              # emitted once, not 4x
        assert san.deduplicated == 3
        assert any("deduplicated" in d.message for d in notes)
        assert any("x4" in d.message for d in notes)

    def test_clusters_accessor_for_verify_handoff(self, sim):
        res = Resource(sim, capacity=1, name="bus")
        san = DeterminismSanitizer()
        sim.attach_sanitizer(san)

        def worker():
            yield res.acquire()
            yield 5.0
            res.release()

        sim.process(worker(), name="alice")
        sim.process(worker(), name="bob")
        sim.run()
        clusters = san.clusters()
        assert clusters
        cluster = clusters[0]
        assert cluster.rule == "KD001"
        assert cluster.obj == "bus"
        assert cluster.time == 0.0
        assert set(cluster.procs) == {"alice", "bob"}


# ---------------------------------------------------------------------------
# Runtime deadlock diagnostics (RT001) and validate.py delegation
# ---------------------------------------------------------------------------

class TestRuntimeDeadlock:
    def test_deadlock_error_names_blocked_receives(self):
        wb = Workbench(generic_multicomputer("full", (2,)))
        ts = TraceSet.from_lists([[recv(1)], [recv(0)]])
        with pytest.raises(DeadlockError) as err:
            wb.run_comm_only(ts)
        diags = err.value.diagnostics
        assert diags and all(d.rule == "RT001" for d in diags)
        text = " ".join(d.message for d in diags)
        assert "node0" in text and "receive posted" in text
        assert "node0" in str(err.value)      # detail reaches the message


class TestValidateDelegation:
    def test_legacy_messages_preserved(self):
        with pytest.raises(ValidationError, match="self-communication"):
            validate_trace_set(TraceSet.from_lists([[send(64, 0)], []]))
        with pytest.raises(ValidationError, match="unmatched"):
            validate_trace_set(TraceSet.from_lists([[send(64, 1)], []]))

    def test_order_deadlock_now_rejected(self):
        with pytest.raises(ValidationError, match="static deadlock"):
            validate_trace_set(cyclic_traces(3))

    def test_clean_set_passes(self):
        validate_trace_set(TraceSet.from_lists([
            [send(64, 1), arecv(1)],
            [recv(0), asend(32, 0)],
        ]))


# ---------------------------------------------------------------------------
# Golden snapshot: a deliberately broken trace / config / description trio
# ---------------------------------------------------------------------------

class TestGoldenDiagnostics:
    def test_broken_trio_snapshot(self):
        trace_report = check_traces(cyclic_traces(3), subject="broken-trace")
        machine = t805_grid(2, 2)
        machine.network.flit_bytes = -8
        machine_report = check_machine(machine, subject="broken-machine")
        desc = StochasticAppDescription(
            name="broken", mix=InstructionMix(load=-0.1),
            loopback_prob=0.9, far_jump_prob=0.2)
        desc_report = check_description(desc, n_nodes=1,
                                        subject="broken-description")
        check_golden("check_diagnostics", {
            "trace": trace_report.to_dict(),
            "machine": machine_report.to_dict(),
            "description": desc_report.to_dict(),
        })


# ---------------------------------------------------------------------------
# Sweep pre-flight integration
# ---------------------------------------------------------------------------

def _set_flit(machine, value):
    machine.network.flit_bytes = value


def _flit_runner(machine):
    return {"flit": machine.network.flit_bytes}


class TestSweepPreflight:
    def test_invalid_variant_becomes_error_row(self):
        sweep = Sweep(t805_grid(2, 2)).axis("flit", _set_flit, [8, -4, 16])
        rows = sweep.run(_flit_runner)
        assert rows[0] == {"flit": 8}
        assert rows[2] == {"flit": 16}
        assert rows[1]["flit"] == -4
        assert rows[1]["error"].startswith("CheckError: MC001")

    def test_on_error_raise_aborts(self):
        from repro.parallel import SweepVariantError
        sweep = Sweep(t805_grid(2, 2)).axis("flit", _set_flit, [-4])
        with pytest.raises(SweepVariantError, match="CheckError"):
            sweep.run(_flit_runner, on_error="raise")

    def test_preflight_false_restores_old_behaviour(self):
        from repro.core.config import ConfigError
        sweep = Sweep(t805_grid(2, 2)).axis("flit", _set_flit, [-4])
        with pytest.raises(ConfigError):      # eager validation, no analyzer
            sweep.run(_flit_runner, preflight=False)
        with pytest.raises(ConfigError):
            sweep.points()                    # default points() still strict

    def test_workbench_check_facade(self):
        wb = Workbench(t805_grid(2, 2))
        report = wb.check(description=StochasticAppDescription())
        assert report.ok


# ---------------------------------------------------------------------------
# Bundled artifacts are lint-clean
# ---------------------------------------------------------------------------

class TestBundledArtifactsClean:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_presets_clean(self, preset, assert_lint_clean):
        assert_lint_clean(machine=PRESETS[preset]())

    @pytest.mark.parametrize("workload", [None, *sorted(WORKLOAD_CLASSES)])
    def test_descriptions_and_generated_traces_clean(self, workload,
                                                     assert_lint_clean):
        from repro.tracegen import StochasticGenerator
        desc = (WORKLOAD_CLASSES[workload]() if workload
                else StochasticAppDescription())
        assert_lint_clean(description=desc, n_nodes=4)
        gen = StochasticGenerator(desc, 4, seed=0)
        assert_lint_clean(traces=gen.generate_task_level(5), n_nodes=4)

    def test_app_task_traces_clean(self, assert_lint_clean):
        from repro.apps import (alltoall_task_traces, pingpong_task_traces,
                                pipeline_task_traces)
        assert_lint_clean(traces=pingpong_task_traces(2), n_nodes=2)
        assert_lint_clean(traces=alltoall_task_traces(4), n_nodes=4)
        assert_lint_clean(traces=pipeline_task_traces(4), n_nodes=4)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCheckCLI:
    def test_clean_preset_exits_zero(self, capsys):
        assert main(["check", "--preset", "t805-grid-2x2"]) == 0
        assert "ok   machine:t805-grid-2x2" in capsys.readouterr().out

    def test_broken_override_exits_nonzero(self, capsys):
        code = main(["check", "--preset", "t805-grid-2x2",
                     "--set", "network.flit_bytes=-8"])
        assert code == 1
        assert "MC001" in capsys.readouterr().out

    def test_cyclic_trace_file_reports_tr005(self, tmp_path, capsys):
        path = str(tmp_path / "cyclic.npz")
        cyclic_traces(3).save(path)
        assert main(["check", "--trace", path]) == 1
        assert "TR005" in capsys.readouterr().out

    def test_json_output_parses(self, capsys):
        assert main(["check", "--preset", "t805-grid-2x2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert data["reports"][0]["subject"] == "machine:t805-grid-2x2"

    def test_rules_table(self, capsys):
        assert main(["check", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("TR005", "MC003", "AD002", "KD001", "RT001"):
            assert rule in out

    def test_fix_none_smoke_of_full_bundle(self, capsys):
        assert main(["check", "--fix-none", "--nodes", "4"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_determinism_run(self, capsys):
        assert main(["check", "--preset", "t805-grid-2x2",
                     "--determinism"]) == 0
        assert "determinism" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Property: the static deadlock verdict agrees with the sync comm model
# ---------------------------------------------------------------------------

N_PROP_NODES = 3


@st.composite
def shuffled_matched_traces(draw):
    """Matched-by-construction sync messages, per-node order shuffled.

    Counts always balance (every message contributes one send and one
    recv), so any failure is purely an *ordering* deadlock — exactly
    what the deadlock pass claims to decide for sync-only traces.
    """
    pairs = draw(st.lists(
        st.tuples(st.integers(0, N_PROP_NODES - 1),
                  st.integers(0, N_PROP_NODES - 1)).filter(
                      lambda p: p[0] != p[1]),
        min_size=1, max_size=6))
    per_node = [[] for _ in range(N_PROP_NODES)]
    for src, dst in pairs:
        per_node[src].append(send(64, dst))
        per_node[dst].append(recv(src))
    for node in range(N_PROP_NODES):
        per_node[node] = draw(st.permutations(per_node[node]))
    return TraceSet.from_lists(per_node)


class TestDeadlockPassProperty:
    @settings(max_examples=60, deadline=None)
    @given(traces=shuffled_matched_traces())
    def test_static_verdict_matches_simulation(self, traces):
        report = check_traces(traces)
        machine = generic_multicomputer("full", (N_PROP_NODES,))
        wb = Workbench(machine)
        if report.ok:
            result = wb.run_comm_only(traces)     # must complete
            assert result.total_cycles > 0
        else:
            assert report.by_rule("TR005") or report.by_rule("TR006")
            with pytest.raises(DeadlockError):
                wb.run_comm_only(traces)
