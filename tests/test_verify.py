"""Schedule-space verification: tie-break hook, explorer, certificates.

The seeded fixtures live in ``tests/fixtures/race_model.py`` (module
level, so sharded exploration can pickle them); CI runs the race one
as a smoke test via ``python -m tests.fixtures.race_model``.
"""

from __future__ import annotations

import pytest

from repro.check.diagnostics import Severity
from repro.core.workbench import Workbench
from repro.machines import t805_grid
from repro.parallel.cache import ResultCache, result_key
from repro.pearl import SimulationError, Simulator
from repro.pearl.resource import Resource
from repro.verify import (
    Perturbation,
    RecordingOrder,
    ScheduleExplorer,
    SeedOrder,
    VerifyError,
    flatten_summary,
    run_schedule,
    summary_diff,
)
from tests.fixtures.race_model import (
    benign_factory,
    deadlock_factory,
    race_factory,
    wide_race_factory,
)
from tests.test_determinism import check_golden

KERNELS = pytest.mark.parametrize("kernel", ["seed", "fast"])


def _log_model(kernel: str, hook=None) -> list[tuple[str, float]]:
    """Three same-time processes logging (name, now) at each step."""
    sim = Simulator(kernel=kernel)
    log: list[tuple[str, float]] = []

    def proc(tag: str):
        log.append((tag, sim.now))
        yield 1.0
        log.append((tag, sim.now))

    for tag in "abc":
        sim.process(proc(tag), name=tag)
    if hook is not None:
        sim.attach_tie_break(hook)
    sim.run()
    return log


class _ReverseOrder:
    def select(self, time, candidates):
        return len(candidates) - 1


class _OutOfRange:
    def select(self, time, candidates):
        return len(candidates)


class TestTieBreakHook:
    @KERNELS
    def test_seed_order_reproduces_default_schedule(self, kernel):
        assert _log_model(kernel, SeedOrder()) == _log_model(kernel)

    def test_hooked_schedule_identical_across_kernels(self):
        assert _log_model("seed", SeedOrder()) == \
            _log_model("fast", SeedOrder())

    @KERNELS
    def test_reverse_order_changes_schedule(self, kernel):
        default = _log_model(kernel)
        reversed_ = _log_model(kernel, _ReverseOrder())
        assert sorted(default) == sorted(reversed_)   # same events...
        assert default != reversed_                   # ...different order

    @KERNELS
    def test_out_of_range_selection_raises(self, kernel):
        with pytest.raises(SimulationError, match="tie-break"):
            _log_model(kernel, _OutOfRange())

    @KERNELS
    def test_recording_order_captures_bursts(self, kernel):
        rec = RecordingOrder()
        _log_model(kernel, rec)
        assert rec.bursts, "no same-time choice points recorded"
        time, names = rec.bursts[0]
        assert time == 0.0
        assert sorted(names) == ["a", "b", "c"]


class TestRunSchedule:
    def test_baseline_outcome(self):
        outcome = run_schedule(race_factory)
        assert outcome.error is None and not outcome.deadlock
        assert outcome.summary == {"first": "A"}
        assert outcome.clusters, "sanitizer saw no contention"

    def test_perturbed_outcome_flips_winner(self):
        pert = Perturbation(time=0.0, obj="lock", kind="acquire",
                            order=("B", "A"))
        outcome = run_schedule(race_factory, pert)
        assert outcome.summary == {"first": "B"}


class TestExplorerVerdicts:
    def test_confirmed_race_with_counterexample(self):
        result = ScheduleExplorer(budget=16).explore(race_factory)
        assert not result.ok
        (verdict,) = result.races
        assert verdict.obj == "lock"
        assert verdict.counterexample == [
            {"path": "first", "baseline": "A", "witness": "B"}]
        assert verdict.witness is not None
        assert "lock" in verdict.witness.describe()
        report = result.report("race")
        assert not report.ok
        assert report.errors[0].rule == "KV001"
        assert "first: A -> B" in report.errors[0].message

    def test_benign_cluster_proven(self):
        result = ScheduleExplorer(budget=16).explore(benign_factory)
        assert result.ok
        (verdict,) = result.benign
        assert verdict.explored == verdict.planned
        report = result.report("benign")
        assert report.ok
        assert report.by_rule("KV002")

    def test_reachable_deadlock(self):
        result = ScheduleExplorer(budget=16).explore(deadlock_factory)
        assert not result.ok
        (verdict,) = result.deadlocks
        assert verdict.deadlock == ("releaser", "waiter")
        report = result.report("deadlock")
        assert not report.ok
        assert report.errors[0].rule == "KV003"
        assert "blocked forever" in report.errors[0].message

    def test_baseline_deadlock_is_an_error(self):
        def factory():
            sim = Simulator()
            gate = sim.event("gate")

            def waiter():
                yield gate
            sim.process(waiter(), name="w")

            def run():
                sim.run(check_deadlock=True)
                return {}
            return sim, run

        with pytest.raises(VerifyError, match="already deadlocks"):
            ScheduleExplorer(budget=4).explore(factory)

    def test_budget_truncation_reports_frontier(self):
        def factory():
            sim = Simulator()
            result = {"acquired": 0}
            res = Resource(sim, 1, name="lock")

            def contender():
                yield res.acquire()
                result["acquired"] += 1
                yield 5.0
                res.release()

            for tag in "ABCD":
                sim.process(contender(), name=tag)

            def run():
                sim.run(check_deadlock=True)
                return dict(result)
            return sim, run

        result = ScheduleExplorer(budget=4).explore(factory)
        assert result.ok                      # no race proven either way
        assert result.schedules_explored == 4
        assert result.schedules_planned > result.schedules_explored
        (verdict,) = result.truncated
        assert verdict.explored < verdict.planned
        assert result.frontier
        report = result.report("truncated")
        kv004 = report.by_rule("KV004")
        assert any(d.severity is Severity.WARNING for d in kv004)
        assert any("frontier" in d.message for d in kv004)

    def test_early_verdict_moots_remaining_orderings(self):
        def factory():
            sim = Simulator()
            result: dict[str, str] = {}
            res = Resource(sim, 1, name="lock")

            def contender(tag):
                def proc():
                    yield res.acquire()
                    result.setdefault("first", tag)
                    yield 5.0
                    res.release()
                return proc

            for tag in "ABC":
                sim.process(contender(tag)(), name=tag)

            def run():
                sim.run(check_deadlock=True)
                return dict(result)
            return sim, run

        result = ScheduleExplorer(budget=3).explore(factory)
        assert result.races
        assert result.skipped >= 1            # mooted, not frontier
        assert not result.frontier

    def test_explorer_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="budget"):
            ScheduleExplorer(budget=0)
        with pytest.raises(ValueError, match="mode"):
            ScheduleExplorer(mode="exhaustive")


class TestPartialOrderReduction:
    def test_dpor_plans_and_explores_fewer_than_naive(self):
        dpor = ScheduleExplorer(budget=64).explore(wide_race_factory)
        naive = ScheduleExplorer(budget=64,
                                 mode="naive").explore(wide_race_factory)
        assert not dpor.ok and not naive.ok   # both catch the race
        assert dpor.schedules_planned < naive.schedules_planned
        assert dpor.schedules_explored < naive.schedules_explored

    def test_sharded_exploration_matches_serial(self):
        serial = ScheduleExplorer(budget=32,
                                  mode="naive").explore(wide_race_factory)
        sharded = ScheduleExplorer(budget=32, mode="naive").explore(
            wide_race_factory, workers=2)
        assert sharded.certificate == serial.certificate
        assert [v.verdict for v in sharded.verdicts] == \
            [v.verdict for v in serial.verdicts]


class TestCertificate:
    @KERNELS
    def test_certificate_pinned_across_kernels(self, kernel, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", kernel)
        result = ScheduleExplorer(budget=16).explore(race_factory)
        check_golden("verify_race_certificate", {
            "certificate": result.certificate,
            "baseline_fingerprint": result.baseline_fingerprint,
            "schedules_planned": result.schedules_planned,
            "schedules_explored": result.schedules_explored,
        })

    def test_certificate_is_reproducible(self):
        a = ScheduleExplorer(budget=16).explore(benign_factory)
        b = ScheduleExplorer(budget=16).explore(benign_factory)
        assert a.certificate == b.certificate

    def test_certificate_reflects_exploration(self):
        small = ScheduleExplorer(budget=2).explore(wide_race_factory)
        large = ScheduleExplorer(budget=32).explore(wide_race_factory)
        assert small.certificate != large.certificate

    def test_certificate_extends_cache_key(self, tmp_path):
        machine = t805_grid(2, 2)
        plain = result_key(machine, "wl", version="v")
        certified = result_key(machine, "wl", version="v",
                               certificate="abc")
        assert plain != certified
        assert result_key(machine, "wl", version="v",
                          certificate="abc") == certified
        assert result_key(machine, "wl", version="v",
                          certificate="def") != certified
        cache = ResultCache(tmp_path)
        assert cache.key_for(machine, "wl") != \
            cache.key_for(machine, "wl", certificate="abc")


class TestResultHelpers:
    def test_flatten_summary_paths(self):
        flat = flatten_summary({"b": [1, {"c": 2.5}], "a": "x"})
        assert flat == {"a": "x", "b[0]": 1, "b[1].c": 2.5}

    def test_summary_diff_limit(self):
        base = {f"k{i}": i for i in range(12)}
        diffs = summary_diff(base, {}, limit=8)
        assert len(diffs) == 9
        assert diffs[-1]["path"] == "..."
        assert "4 more" in diffs[-1]["baseline"]

    def test_perturbation_roundtrip(self):
        pert = Perturbation(time=3.0, obj="bus", kind="acquire",
                            order=("b", "a"))
        assert pert.to_dict()["order"] == ["b", "a"]
        assert "bus" in pert.describe() and "t=3" in pert.describe()


class TestWorkbenchVerify:
    def test_trace_workload(self):
        from repro.apps import pingpong_task_traces
        wb = Workbench(t805_grid(2, 2))
        result = wb.verify(pingpong_task_traces(wb.n_nodes), budget=8)
        assert result.ok
        assert result.schedules_explored >= 1

    def test_application_workload(self):
        wb = Workbench(t805_grid(2, 2))
        result = wb.verify(application="masterworker", budget=8)
        assert result.ok

    def test_exactly_one_workload_required(self):
        from repro.apps import pingpong_task_traces
        wb = Workbench(t805_grid(2, 2))
        with pytest.raises(ValueError, match="exactly one"):
            wb.verify()
        with pytest.raises(ValueError, match="exactly one"):
            wb.verify(pingpong_task_traces(wb.n_nodes),
                      application="pingpong")
        with pytest.raises(ValueError, match="unknown verify app"):
            wb.verify(application="mandelbrot")
