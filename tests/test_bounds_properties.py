"""Property tests (hypothesis): the bound oracle over randomized workloads.

Two invariants, each under both kernel dispatchers:

* **soundness** — for any stochastic workload the static
  ``cycle_lower_bound`` never exceeds the simulated ``total_cycles``,
  and the static per-link wire bytes equal the engine's
  ``Link.bytes_moved`` accounting exactly (deterministic routing);
* **tightness** — on a contention-free single-message ping-pong the
  bound is not just below the simulated time, it *is* the simulated
  time, for any message size up to one packet.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.bounds import compute_bounds
from repro.cli import build_machine
from repro.commmodel.network import MultiNodeModel
from repro.operations.ops import compute, recv, send
from repro.operations.trace import Trace, TraceSet
from repro.pearl import Simulator
from repro.tracegen import WORKLOAD_CLASSES, StochasticGenerator
from repro.tracegen.descriptions import StochasticAppDescription

KERNELS = ("seed", "fast")

workload_names = st.sampled_from((None,) + tuple(sorted(WORKLOAD_CLASSES)))


def _stochastic_traces(workload, rounds: int, seed: int,
                       n_nodes: int) -> TraceSet:
    desc = (StochasticAppDescription() if workload is None
            else WORKLOAD_CLASSES[workload]())
    gen = StochasticGenerator(desc, n_nodes, seed=seed)
    return gen.generate_task_level(rounds)


@pytest.mark.parametrize("kernel", KERNELS)
@settings(max_examples=10, deadline=None)
@given(workload=workload_names, rounds=st.integers(1, 4),
       seed=st.integers(0, 2**16))
def test_bound_never_exceeds_simulated(kernel, workload, rounds, seed):
    machine = build_machine("t805-grid-2x2")
    traces = _stochastic_traces(workload, rounds, seed, machine.n_nodes)
    bound = compute_bounds(machine, traces)
    model = MultiNodeModel(machine, sim=Simulator(kernel=kernel))
    result = model.run(list(traces))
    assert bound.cycle_lower_bound <= result.total_cycles * (1 + 1e-9)
    simulated = {key: link.bytes_moved
                 for key, link in model.engine.links.items()
                 if link.bytes_moved}
    static = {(l.src, l.dst): l.bytes for l in bound.link_loads}
    assert set(static) == set(simulated)
    for key, nbytes in static.items():
        assert math.isclose(nbytes, simulated[key], rel_tol=1e-9)


@pytest.mark.parametrize("kernel", KERNELS)
@settings(max_examples=10, deadline=None)
@given(size=st.integers(1, 512), work=st.floats(0.0, 5_000.0),
       seed=st.integers(0, 2**16))
def test_exact_tie_on_contention_free_pingpong(kernel, size, work, seed):
    """One message in flight at a time: the bound is exact.

    t805 packets are 512 bytes, so any size here is a single packet;
    the round trip between nodes 0 and 1 on the 2x2 grid never shares
    a link with other traffic, so every inequality the analyzer relies
    on collapses to an equality."""
    del seed  # sized by hypothesis for shrink diversity only
    machine = build_machine("t805-grid-2x2")
    lists = [
        [compute(work), send(size, 1), recv(1)],
        [recv(0), send(size, 0)],
        [], [],
    ]
    traces = TraceSet([Trace(i, ops) for i, ops in enumerate(lists)])
    bound = compute_bounds(machine, traces)
    model = MultiNodeModel(machine, sim=Simulator(kernel=kernel))
    total = model.run(list(traces)).total_cycles
    assert math.isclose(bound.cycle_lower_bound, total, rel_tol=1e-9)
