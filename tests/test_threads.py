"""Node threads, interleaved streams, and the functional executor."""

from __future__ import annotations

import pytest

from repro.operations import (
    OpCode,
    add,
    arecv,
    compute,
    recv,
    send,
)
from repro.tracegen import (
    FunctionalExecutor,
    InterleavedStream,
    NodeThread,
    TraceGenerationError,
)


class TestNodeThread:
    def test_emits_and_finishes(self):
        def body(th):
            th.emit(add())
            th.emit(add())
        th = NodeThread(0, body)
        th.advance()
        assert th.done
        assert len(th.buffer) == 2

    def test_suspends_at_global_event(self):
        def body(th):
            th.emit(add())
            th.global_event(send(64, 1), payload="data")
            th.emit(add())
        th = NodeThread(0, body)
        th.advance()
        assert th.state == "suspended"
        assert th.pending_op.code is OpCode.SEND
        assert th.pending_payload == "data"
        assert len(th.buffer) == 1
        th.advance()
        assert th.done
        assert len(th.buffer) == 2

    def test_resume_value_returned(self):
        got = []

        def body(th):
            got.append(th.global_event(recv(1)))
        th = NodeThread(0, body)
        th.advance()
        th.advance("payload!")
        assert got == ["payload!"]

    def test_non_global_event_rejected(self):
        def body(th):
            th.global_event(compute(5))
        th = NodeThread(0, body)
        with pytest.raises(TraceGenerationError, match="not a global event"):
            th.advance()

    def test_exception_reported(self):
        def body(th):
            raise ValueError("app bug")
        th = NodeThread(0, body)
        with pytest.raises(TraceGenerationError, match="app bug"):
            th.advance()

    def test_advance_after_done_rejected(self):
        th = NodeThread(0, lambda t: None)
        th.advance()
        with pytest.raises(TraceGenerationError):
            th.advance()

    def test_close_kills_suspended_thread(self):
        cleanup = []

        def body(th):
            try:
                th.global_event(recv(1))
            finally:
                cleanup.append(True)
        th = NodeThread(0, body)
        th.advance()
        th.close()
        assert cleanup == [True]

    def test_close_idle_is_noop(self):
        th = NodeThread(0, lambda t: None)
        th.close()       # never started


class TestInterleavedStream:
    def test_full_iteration(self):
        def body(th):
            th.emit(add())
            th.global_event(send(64, 1))
            th.emit(add())
            th.emit(add())
        stream = InterleavedStream(NodeThread(0, body))
        codes = [op.code for op in stream]
        assert codes == [OpCode.ADD, OpCode.SEND, OpCode.ADD, OpCode.ADD]

    def test_event_yielded_once(self):
        def body(th):
            th.global_event(send(64, 1))
        stream = InterleavedStream(NodeThread(0, body))
        ops = list(stream)
        assert [op.code for op in ops] == [OpCode.SEND]

    def test_thread_not_resumed_until_next_pull(self):
        """Physical-time interleaving: the thread must stay suspended
        while the simulator processes its global event."""
        progress = []

        def body(th):
            th.global_event(send(64, 1))
            progress.append("resumed")
        stream = InterleavedStream(NodeThread(0, body))
        op = next(stream)
        assert op.code is OpCode.SEND
        assert progress == []          # still suspended
        with pytest.raises(StopIteration):
            next(stream)
        assert progress == ["resumed"]

    def test_post_result_reaches_program(self):
        got = []

        def body(th):
            got.append(th.global_event(recv(1)))
        stream = InterleavedStream(NodeThread(0, body))
        next(stream)                   # the recv op
        stream.post_result("msg-body")
        with pytest.raises(StopIteration):
            next(stream)
        assert got == ["msg-body"]

    def test_empty_program(self):
        stream = InterleavedStream(NodeThread(0, lambda t: None))
        assert list(stream) == []


class TestFunctionalExecutor:
    def test_records_matched_communication(self):
        def maker(me):
            def body(th):
                th.emit(add())
                if me == 0:
                    th.global_event(send(64, 1), payload="ping")
                    got = th.global_event(recv(1))
                    assert got == "pong"
                else:
                    got = th.global_event(recv(0))
                    assert got == "ping"
                    th.global_event(send(64, 0), payload="pong")
            return body
        ts = FunctionalExecutor([maker(0), maker(1)]).record()
        assert len(ts) == 2
        assert ts[0].op_histogram()[OpCode.SEND] == 1
        assert ts[1].op_histogram()[OpCode.RECV] == 1

    def test_send_never_blocks_in_recording(self):
        """Buffered semantics: a send with a late receiver still records."""
        def sender(th):
            for _ in range(5):
                th.global_event(send(8, 1))

        def receiver(th):
            for _ in range(5):
                th.global_event(recv(0))
        ts = FunctionalExecutor([sender, receiver]).record()
        assert ts[0].op_histogram()[OpCode.SEND] == 5

    def test_deadlock_detected(self):
        def a(th):
            th.global_event(recv(1))

        def b(th):
            th.global_event(recv(0))
        with pytest.raises(TraceGenerationError, match="deadlock"):
            FunctionalExecutor([a, b]).record()

    def test_arecv_never_blocks(self):
        got = []

        def a(th):
            got.append(th.global_event(arecv(1)))
            th.emit(add())

        def b(th):
            pass
        ts = FunctionalExecutor([a, b]).record()
        assert got == [None]
        assert ts[0].op_histogram()[OpCode.ARECV] == 1

    def test_fifo_payloads_per_pair(self):
        got = []

        def sender(th):
            for i in range(3):
                th.global_event(send(8, 1), payload=i)

        def receiver(th):
            for _ in range(3):
                got.append(th.global_event(recv(0)))
        FunctionalExecutor([sender, receiver]).record()
        assert got == [0, 1, 2]

    def test_application_error_propagates(self):
        def bad(th):
            th.emit(add())
            raise RuntimeError("kaboom")
        with pytest.raises(TraceGenerationError, match="kaboom"):
            FunctionalExecutor([bad]).record()
