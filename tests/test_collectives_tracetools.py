"""Collective operations (scatter/gather/allgather) and trace tools."""

from __future__ import annotations

import io

import pytest

from repro import Workbench, generic_multicomputer
from repro.analysis import (
    compare_trace_sets,
    dump_trace,
    trace_profile,
    trace_set_profile,
)
from repro.apps import ThreadedApplication, make_matmul
from repro.operations import (
    MemType,
    Trace,
    TraceSet,
    add,
    ifetch,
    load,
    send,
    validate_trace_set,
)


class TestCollectives:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 6])
    def test_scatter(self, n):
        got = {}

        def program(ctx):
            values = [f"v{i}" for i in range(ctx.n_nodes)] \
                if ctx.node_id == 0 else None
            got[ctx.node_id] = ctx.scatter(0, 64, values)

        ts = ThreadedApplication(program, n).record()
        validate_trace_set(ts)
        assert got == {i: f"v{i}" for i in range(n)}

    @pytest.mark.parametrize("n", [1, 2, 4, 5])
    def test_gather(self, n):
        got = {}

        def program(ctx):
            got[ctx.node_id] = ctx.gather(0, 32, ctx.node_id * 10)

        ts = ThreadedApplication(program, n).record()
        validate_trace_set(ts)
        assert got[0] == [i * 10 for i in range(n)]
        assert all(got[i] is None for i in range(1, n))

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7])
    def test_allgather(self, n):
        got = {}

        def program(ctx):
            got[ctx.node_id] = ctx.allgather(16, ctx.node_id + 100)

        ts = ThreadedApplication(program, n).record()
        validate_trace_set(ts)
        expected = [i + 100 for i in range(n)]
        assert all(got[i] == expected for i in range(n))

    def test_scatter_wrong_value_count(self):
        def program(ctx):
            values = [1] if ctx.node_id == 0 else None
            ctx.scatter(0, 8, values)

        with pytest.raises(Exception, match="scatter needs"):
            ThreadedApplication(program, 3).record()

    def test_collectives_simulate(self):
        def program(ctx):
            mine = ctx.scatter(0, 1024,
                               list(range(ctx.n_nodes))
                               if ctx.node_id == 0 else None)
            everyone = ctx.allgather(512, mine * 2)
            total = ctx.gather(0, 256, sum(everyone))
            if ctx.node_id == 0:
                assert all(t == sum(2 * i for i in range(ctx.n_nodes))
                           for t in total)

        wb = Workbench(generic_multicomputer("mesh", (2, 2)))
        res = wb.run_hybrid(program)
        assert res.comm.messages_delivered > 0


class TestTraceTools:
    def sample(self) -> Trace:
        ops = [ifetch(0x400000), load(MemType.FLOAT64, 0x1000), add(),
               ifetch(0x400000), add(), send(128, 1)]
        return Trace(0, ops)

    def test_dump(self):
        buf = io.StringIO()
        n = dump_trace(self.sample(), buf)
        assert n == 6
        assert "send" in buf.getvalue()

    def test_dump_limit(self):
        buf = io.StringIO()
        n = dump_trace(self.sample(), buf, limit=2)
        assert n == 2
        assert "more" in buf.getvalue()

    def test_profile(self):
        p = trace_profile(self.sample())
        assert p["ops"] == 6
        assert p["memory"] == 1
        assert p["arithmetic"] == 2
        assert p["communication"] == 1
        assert p["bytes_sent"] == 128
        assert p["loop_reuse"] == 2.0   # two fetches of one address

    def test_set_profile_totals(self):
        ts = TraceSet([self.sample(), Trace(1, [add()])])
        rows = trace_set_profile(ts)
        assert rows[-1]["node"] == "all"
        assert rows[-1]["ops"] == 7

    def test_compare_identical(self):
        app = ThreadedApplication(make_matmul(n=8), 2)
        a = app.record()
        b = ThreadedApplication(make_matmul(n=8), 2).record()
        diff = compare_trace_sets(a, b)
        assert diff["comparable"] and diff["identical"]

    def test_compare_differs(self):
        a = TraceSet([Trace(0, [add(), add()])])
        b = TraceSet([Trace(0, [add(), load(MemType.INT32, 0)])])
        diff = compare_trace_sets(a, b)
        assert not diff["identical"]
        assert diff["first_difference"][0] == 1
        assert diff["count_deltas"]["load"] == 1

    def test_compare_incomparable(self):
        a = TraceSet([Trace(0)])
        b = TraceSet([Trace(0), Trace(1)])
        assert compare_trace_sets(a, b)["comparable"] is False

    def test_compare_length_difference(self):
        a = TraceSet([Trace(0, [add()])])
        b = TraceSet([Trace(0, [add(), add()])])
        diff = compare_trace_sets(a, b)
        assert diff["first_difference"][0] == 1
