"""CPU cost model, single-node template, and task extraction (Fig 2)."""

from __future__ import annotations

import pytest

from repro.compmodel import (
    CPU,
    SingleNodeModel,
    TaskExtractionStats,
    extract_tasks,
)
from repro.core.config import (
    CacheConfig,
    CacheLevelConfig,
    CPUConfig,
    NodeConfig,
)
from repro.operations import (ArithType,
                              MemType,
                              OpCode,
                              add,
                              branch,
                              call,
                              compute,
                              div,
                              ifetch,
                              load,
                              load_const,
                              mul,
                              recv,
                              ret,
                              send,
                              sub)


class TestCPUCosts:
    def cpu(self) -> CPU:
        cfg = CPUConfig(
            add_cycles={ArithType.INT: 1.0, ArithType.FLOAT: 2.0,
                        ArithType.DOUBLE: 3.0},
            sub_cycles={ArithType.INT: 1.0, ArithType.FLOAT: 2.0,
                        ArithType.DOUBLE: 3.0},
            mul_cycles={ArithType.INT: 4.0, ArithType.FLOAT: 5.0,
                        ArithType.DOUBLE: 6.0},
            div_cycles={ArithType.INT: 20.0, ArithType.FLOAT: 21.0,
                        ArithType.DOUBLE: 22.0},
            loadc_cycles=1.5, branch_cycles=2.5, call_cycles=3.5,
            ret_cycles=4.5, load_issue_cycles=1.0, store_issue_cycles=1.0)
        return CPU(cfg, None)

    @pytest.mark.parametrize("op,expected", [
        (add(ArithType.INT), 1.0), (add(ArithType.DOUBLE), 3.0),
        (sub(ArithType.FLOAT), 2.0), (mul(ArithType.INT), 4.0),
        (div(ArithType.DOUBLE), 22.0), (load_const(), 1.5),
        (branch(0), 2.5), (call(0), 3.5), (ret(0), 4.5),
    ])
    def test_fixed_costs(self, op, expected):
        assert self.cpu().op_cycles(op) == expected

    def test_load_without_memsys_costs_issue_only(self):
        assert self.cpu().op_cycles(load(MemType.INT32, 0)) == 1.0

    def test_comm_op_rejected(self):
        with pytest.raises(ValueError, match="communication"):
            self.cpu().op_cycles(send(64, 1))
        with pytest.raises(ValueError):
            self.cpu().op_cycles(compute(5))

    def test_execute_accumulates(self):
        cpu = self.cpu()
        total = cpu.execute([add(), add(), mul()])
        assert total == pytest.approx(6.0)
        assert cpu.stats.instructions == 3
        assert cpu.stats.cycles == pytest.approx(6.0)

    def test_seconds(self):
        cpu = self.cpu()
        cpu.execute([add()] * 100)
        assert cpu.seconds == pytest.approx(100 / cpu.cfg.clock_hz)

    def test_stats_summary(self):
        cpu = self.cpu()
        cpu.execute([load(MemType.INT32, 0), ifetch(4), add()])
        s = cpu.stats.summary()
        assert s["memory_accesses"] == 1
        assert s["ifetches"] == 1
        assert s["op_counts"]["add"] == 1


class TestSingleNodeModel:
    def node(self) -> SingleNodeModel:
        cfg = NodeConfig(cache_levels=[CacheLevelConfig(data=CacheConfig(
            size_bytes=1024, line_bytes=32, associativity=2))])
        return SingleNodeModel(cfg)

    def test_run_trace(self):
        node = self.node()
        result = node.run_trace([ifetch(0x400000), load(MemType.FLOAT64, 0),
                                 add(ArithType.DOUBLE)])
        assert result.instructions == 3
        assert result.cycles > 3
        assert result.cpi == pytest.approx(result.cycles / 3)
        assert result.seconds == pytest.approx(
            result.cycles / node.cfg.cpu.clock_hz)

    def test_rejects_comm_ops(self):
        with pytest.raises(ValueError, match="extract_tasks"):
            self.node().run_trace([send(64, 1)])

    def test_rejects_multi_cpu(self):
        cfg = NodeConfig(n_cpus=2,
                         cache_levels=[CacheLevelConfig(data=CacheConfig())])
        with pytest.raises(ValueError, match="SMP"):
            SingleNodeModel(cfg)

    def test_reset_cools_caches(self):
        node = self.node()
        warm = node.run_trace([load(MemType.FLOAT64, 0)] * 2)
        node.reset()
        cold = node.run_trace([load(MemType.FLOAT64, 0)])
        assert cold.cycles > warm.cycles / 2   # cold miss vs mostly hits

    def test_caches_warm_across_calls(self):
        node = self.node()
        first = node.run_trace([load(MemType.FLOAT64, 0)])
        second = node.run_trace([load(MemType.FLOAT64, 0)])
        assert second.cycles < first.cycles


class TestExtractTasks:
    def node(self) -> SingleNodeModel:
        return SingleNodeModel(NodeConfig(cache_levels=[]))

    def test_collapses_runs(self):
        node = self.node()
        mixed = [add(), add(), send(64, 1), add(), recv(1), add()]
        out = list(extract_tasks(node, mixed))
        codes = [op.code for op in out]
        assert codes == [OpCode.COMPUTE, OpCode.SEND, OpCode.COMPUTE,
                         OpCode.RECV, OpCode.COMPUTE]

    def test_durations_match_cpu_costs(self):
        node = self.node()
        mixed = [add(), mul(), send(64, 1)]
        out = list(extract_tasks(node, mixed))
        expected = (node.cfg.cpu.add_cycles[ArithType.INT]
                    + node.cfg.cpu.mul_cycles[ArithType.INT])
        assert out[0].duration == pytest.approx(expected)

    def test_no_leading_zero_task(self):
        node = self.node()
        out = list(extract_tasks(node, [send(64, 1), add()]))
        assert [op.code for op in out] == [OpCode.SEND, OpCode.COMPUTE]

    def test_comm_only_passes_through(self):
        node = self.node()
        ops = [send(64, 1), recv(1)]
        assert list(extract_tasks(node, ops)) == ops

    def test_empty(self):
        assert list(extract_tasks(self.node(), [])) == []

    def test_stats(self):
        node = self.node()
        stats = TaskExtractionStats()
        list(extract_tasks(node, [add(), send(64, 1), add(), add()], stats))
        assert stats.computational_ops == 3
        assert stats.communication_ops == 1
        assert stats.tasks_emitted == 2
        assert stats.total_task_cycles == pytest.approx(3.0)
        assert stats.summary()["mean_task_cycles"] == pytest.approx(1.5)

    def test_lazy_over_generator(self):
        """Extraction must not run ahead of the source generator."""
        node = self.node()
        pulled = []

        def source():
            for i, op in enumerate([add(), send(64, 1), add()]):
                pulled.append(i)
                yield op

        gen = extract_tasks(node, source())
        first = next(gen)
        assert first.code is OpCode.COMPUTE
        # To emit the task it had to see the send (ops 0 and 1), not op 2.
        assert pulled == [0, 1]
