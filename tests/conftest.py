"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import (
    BusConfig,
    CacheConfig,
    CacheLevelConfig,
    CPUConfig,
    MachineConfig,
    MemoryConfig,
    NetworkConfig,
    NodeConfig,
    TopologyConfig,
)
from repro.pearl import Simulator


@pytest.fixture(params=["seed", "fast"], ids=["seed-kernel", "fast-kernel"])
def sim(request) -> Simulator:
    """A simulator under each dispatcher — every kernel-level test runs
    against both the seed reference and the fast ring dispatcher."""
    return Simulator(kernel=request.param)


@pytest.fixture
def tiny_cache_cfg() -> CacheConfig:
    """4 sets x 2 ways x 16-byte lines = 128 bytes; easy to reason about."""
    return CacheConfig(name="tiny", size_bytes=128, line_bytes=16,
                       associativity=2, hit_cycles=1.0)


@pytest.fixture
def small_node_cfg(tiny_cache_cfg) -> NodeConfig:
    return NodeConfig(
        cpu=CPUConfig(),
        cache_levels=[CacheLevelConfig(data=tiny_cache_cfg)],
        bus=BusConfig(width_bytes=8, cycles_per_beat=1.0,
                      arbitration_cycles=1.0),
        memory=MemoryConfig(access_cycles=20.0, cycles_per_word=2.0,
                            word_bytes=8),
    )


@pytest.fixture
def ring4_machine() -> MachineConfig:
    return MachineConfig(
        name="ring4",
        network=NetworkConfig(
            topology=TopologyConfig(kind="ring", dims=(4,)))).validate()


@pytest.fixture
def mesh4_machine() -> MachineConfig:
    node = NodeConfig(cache_levels=[CacheLevelConfig(data=CacheConfig())])
    return MachineConfig(
        name="mesh2x2",
        node=node,
        network=NetworkConfig(
            topology=TopologyConfig(kind="mesh", dims=(2, 2)))).validate()


def run_process(sim: Simulator, gen, **kwargs):
    """Helper: run a single process to completion, return its result."""
    proc = sim.process(gen)
    sim.run(**kwargs)
    return proc.result


@pytest.fixture
def assert_lint_clean():
    """Assert an artifact passes ``repro check`` with zero errors.

    Usage: ``assert_lint_clean(machine=...)``, ``(traces=..., n_nodes=N)``
    or ``(description=..., n_nodes=N)`` — every bundled preset, app and
    workload class is held to this in ``tests/test_check.py``.
    """
    from repro.check import check_description, check_machine, check_traces

    def _check(*, machine=None, traces=None, description=None, n_nodes=None):
        if machine is not None:
            report = check_machine(machine)
            assert report.ok, report.format()
        if traces is not None:
            report = check_traces(traces, n_nodes=n_nodes)
            assert report.ok, report.format()
        if description is not None:
            report = check_description(description, n_nodes=n_nodes)
            assert report.ok, report.format()

    return _check
