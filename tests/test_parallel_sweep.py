"""Parallel sweep execution (repro.parallel).

Parallel execution is only trustworthy if it is provably identical to
serial execution, so the core of this suite is the parallel-vs-serial
equivalence contract: same rows, same order, byte-for-byte.  Around it:
worker-count edge cases, per-variant error capture, and the
content-addressed result cache (a cached re-run must perform zero
simulations and return identical rows).

Runner callables cross the process boundary, so everything passed to
``workers > 1`` sweeps lives at module level (picklable).
"""

from __future__ import annotations

import functools
import json

import pytest

from repro import (
    ParallelSweepRunner,
    ResultCache,
    Sweep,
    Workbench,
    generic_multicomputer,
)
from repro.apps import pingpong_task_traces
from repro.parallel import (
    SweepVariantError,
    code_version,
    default_workload_id,
    error_message,
    execute_variant,
    result_key,
)
from repro.tracegen import StochasticAppDescription


# ---------------------------------------------------------------------------
# Module-level runners (picklable for the process pool)
# ---------------------------------------------------------------------------

def set_bw(machine, value):
    machine.network.link_bandwidth = value


def echo_runner(machine):
    return {"bw_out": machine.network.link_bandwidth}


def pingpong_runner(machine):
    n = machine.n_nodes
    res = Workbench(machine).run_comm_only(
        pingpong_task_traces(n, size=256, repeats=2, b=n - 1))
    return {"cycles": res.total_cycles,
            "latency": res.message_latency.mean}


def stochastic_runner(machine):
    res = Workbench(machine).run_stochastic(
        StochasticAppDescription(), level="task", rounds=3, seed=7)
    return {"cycles": res.total_cycles,
            "latency": res.message_latency.mean}


def failing_runner(machine):
    if machine.network.link_bandwidth == 2.0:
        raise ValueError("bandwidth 2.0 is cursed")
    return {"ok": 1.0}


def nondict_runner(machine):
    return 42


def undeliverable_runner(machine):
    """A faulted pingpong whose every link is dead: the transport
    exhausts its budget and raises DeliveryFailed mid-run."""
    from repro.commmodel.message import reset_message_ids
    from repro.commmodel.network import MultiNodeModel
    from repro.faults import FaultPlan, LinkFault, TransportConfig
    plan = FaultPlan(
        seed=1, link_faults=[LinkFault(drop_prob=1.0)],
        transport=TransportConfig(timeout_cycles=1_000.0,
                                  backoff_factor=1.0, max_retries=1))
    reset_message_ids()
    model = MultiNodeModel(machine, faults=plan)
    res = model.run(list(pingpong_task_traces(
        model.n_nodes, size=64, repeats=1, b=1)))
    return {"cycles": res.total_cycles}


def counting_runner(machine, log_path):
    """Append one line per simulation so tests can count invocations."""
    with open(log_path, "a") as fp:
        fp.write(f"{machine.network.link_bandwidth}\n")
    return {"bw_out": machine.network.link_bandwidth}


def bw_sweep(values=(1.0, 2.0, 4.0, 8.0)) -> Sweep:
    sweep = Sweep(generic_multicomputer("mesh", (2, 2)))
    sweep.axis("bw", set_bw, list(values))
    return sweep


# ---------------------------------------------------------------------------
# Parallel-vs-serial equivalence
# ---------------------------------------------------------------------------

class TestEquivalence:
    @pytest.mark.parametrize("runner", [pingpong_runner, stochastic_runner],
                             ids=["pingpong", "stochastic"])
    def test_parallel_rows_identical_to_serial(self, runner):
        serial = bw_sweep().run(runner)
        parallel = bw_sweep().run(runner, workers=4)
        assert serial == parallel
        # Byte-identical, not merely approximately equal.
        assert json.dumps(serial, sort_keys=True) == \
            json.dumps(parallel, sort_keys=True)

    def test_row_order_matches_point_order(self):
        values = [8.0, 1.0, 4.0, 2.0]          # deliberately unsorted
        rows = bw_sweep(values).run(echo_runner, workers=4)
        assert [r["bw"] for r in rows] == values
        assert [r["bw_out"] for r in rows] == values

    def test_two_axis_cross_product_parallel(self):
        sweep = bw_sweep([1.0, 4.0])
        sweep.axis("pkt", lambda m, v: setattr(m.network, "packet_bytes", v),
                   [128, 256])
        serial = sweep.run(pingpong_runner)
        parallel = sweep.run(pingpong_runner, workers=3)
        assert serial == parallel
        assert len(parallel) == 4


class TestWorkerCounts:
    def test_workers_one_is_serial(self):
        assert bw_sweep().run(echo_runner, workers=1) == \
            bw_sweep().run(echo_runner)

    def test_more_workers_than_variants(self):
        rows = bw_sweep([1.0, 2.0]).run(echo_runner, workers=16)
        assert [r["bw_out"] for r in rows] == [1.0, 2.0]

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelSweepRunner(workers=0)

    def test_runner_directly_on_points(self):
        points = bw_sweep([1.0, 2.0]).points()
        rows = ParallelSweepRunner(workers=2).run(echo_runner, points)
        assert [r["bw_out"] for r in rows] == [1.0, 2.0]


# ---------------------------------------------------------------------------
# Error capture: one sick variant must not kill the sweep
# ---------------------------------------------------------------------------

class TestErrorCapture:
    @pytest.mark.parametrize("workers", [None, 3], ids=["serial", "parallel"])
    def test_failure_becomes_error_row(self, workers):
        rows = bw_sweep().run(failing_runner, workers=workers)
        assert len(rows) == 4
        bad = [r for r in rows if "error" in r]
        assert len(bad) == 1
        assert bad[0]["bw"] == 2.0
        assert bad[0]["error"] == "ValueError: bandwidth 2.0 is cursed"
        assert all(r["ok"] == 1.0 for r in rows if "error" not in r)

    @pytest.mark.parametrize("workers", [None, 3], ids=["serial", "parallel"])
    def test_on_error_raise(self, workers):
        with pytest.raises(SweepVariantError, match="bandwidth 2.0"):
            bw_sweep().run(failing_runner, workers=workers,
                           on_error="raise")

    def test_non_dict_return_captured(self):
        rows = bw_sweep([1.0]).run(nondict_runner)
        assert "error" in rows[0] and "expected dict" in rows[0]["error"]

    def test_bad_on_error_value(self):
        with pytest.raises(ValueError, match="on_error"):
            bw_sweep([1.0]).run(echo_runner, on_error="explode")

    def test_execute_variant_contract(self):
        machine = generic_multicomputer("mesh", (2, 2))
        assert execute_variant(echo_runner, machine) == \
            ("ok", {"bw_out": machine.network.link_bandwidth})
        status, payload = execute_variant(
            lambda m: 1 / 0, machine)
        assert status == "error"
        assert error_message(payload).startswith("ZeroDivisionError")
        # The formatted remote traceback rides along for debuggability.
        assert "ZeroDivisionError" in payload["traceback"]
        assert "execute_variant" in payload["traceback"]

    @pytest.mark.parametrize("workers", [None, 2], ids=["serial", "parallel"])
    def test_error_rows_carry_remote_traceback(self, workers):
        """Regression: error rows used to carry only ``repr(exc)``; the
        formatted traceback from the (possibly remote) worker must ride
        along so failed rows are debuggable from a service job record."""
        rows = bw_sweep([1.0, 2.0]).run(failing_runner, workers=workers)
        bad = [r for r in rows if "error" in r]
        assert len(bad) == 1
        tb = bad[0]["traceback"]
        assert "ValueError: bandwidth 2.0 is cursed" in tb
        assert "failing_runner" in tb

    def test_remote_traceback_identical_serial_vs_parallel(self):
        serial = bw_sweep([1.0, 2.0]).run(failing_runner, workers=1)
        parallel = bw_sweep([1.0, 2.0]).run(failing_runner, workers=2)
        assert serial == parallel

    @pytest.mark.parametrize("workers", [None, 2], ids=["serial", "parallel"])
    def test_delivery_failed_row_keeps_metric_columns(self, workers):
        """Regression: a ``DeliveryFailed`` variant used to collapse to
        a bare ``{coords, error}`` row, so campaign reductions saw a
        ragged schema.  The captured row now carries the same
        ``dropped``/``retransmissions``/``delivery_failed`` columns as
        successful faulted rows, salvaged from the partial result."""
        machine = generic_multicomputer("mesh", (2, 2))
        pool = ParallelSweepRunner(workers=workers)
        rows = pool.run(undeliverable_runner, [({"v": 1}, machine)],
                        workload_id="w")
        (row,) = rows
        assert row["v"] == 1
        assert row["error"].startswith("DeliveryFailed")
        # Uniform schema: the fault-metric columns are present and
        # real (every attempt on the dead mesh was dropped).
        assert row["delivery_failed"] == 1
        assert row["dropped"] > 0
        assert row["retransmissions"] > 0

    def test_delivery_failed_still_raises_on_request(self):
        machine = generic_multicomputer("mesh", (2, 2))
        pool = ParallelSweepRunner(workers=1)
        with pytest.raises(SweepVariantError, match="DeliveryFailed"):
            pool.run(undeliverable_runner, [({}, machine)],
                     workload_id="w", on_error="raise")


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------

class TestResultCache:
    def test_rerun_performs_zero_simulations(self, tmp_path):
        log = tmp_path / "runs.log"
        cache = ResultCache(tmp_path / "cache")
        runner = functools.partial(counting_runner, log_path=str(log))

        first = bw_sweep().run(runner, workers=2, cache=cache,
                               workload_id="count")
        assert len(log.read_text().splitlines()) == 4
        assert cache.stats.stores == 4 and cache.stats.hits == 0

        second = bw_sweep().run(runner, workers=2, cache=cache,
                                workload_id="count")
        assert second == first
        assert len(log.read_text().splitlines()) == 4   # no new simulations
        assert cache.stats.hits == 4

    def test_cache_dir_path_accepted(self, tmp_path):
        first = bw_sweep().run(echo_runner, cache=str(tmp_path))
        second = bw_sweep().run(echo_runner, cache=str(tmp_path))
        assert first == second
        assert len(ResultCache(tmp_path)) == 4

    def test_partial_hit_simulates_only_new_variants(self, tmp_path):
        log = tmp_path / "runs.log"
        cache = ResultCache(tmp_path / "cache")
        runner = functools.partial(counting_runner, log_path=str(log))
        bw_sweep([1.0, 2.0]).run(runner, cache=cache, workload_id="count")
        bw_sweep([1.0, 2.0, 4.0]).run(runner, cache=cache,
                                      workload_id="count")
        # 2 first + only the one genuinely new variant on the re-run.
        assert len(log.read_text().splitlines()) == 3

    def test_error_rows_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        rows = bw_sweep().run(failing_runner, cache=cache)
        assert sum("error" in r for r in rows) == 1
        assert len(cache) == 3                          # only the ok rows
        assert cache.stats.stores == 3

    def test_workload_id_separates_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        bw_sweep([1.0]).run(echo_runner, cache=cache, workload_id="a")
        bw_sweep([1.0]).run(echo_runner, cache=cache, workload_id="b")
        assert cache.stats.hits == 0 and cache.stats.stores == 2

    def test_get_put_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        machine = generic_multicomputer("mesh", (2, 2))
        key = cache.key_for(machine, "w")
        assert cache.get(key) is None
        cache.put(key, {"cycles": 123.5})
        assert cache.get(key) == {"cycles": 123.5}


class TestCacheKeys:
    def test_key_is_stable_across_equal_configs(self):
        a = generic_multicomputer("mesh", (2, 2))
        b = generic_multicomputer("mesh", (2, 2))
        assert result_key(a, "w") == result_key(b, "w")

    def test_key_depends_on_machine(self):
        a = generic_multicomputer("mesh", (2, 2))
        b = generic_multicomputer("mesh", (2, 2))
        b.network.link_bandwidth *= 2
        assert result_key(a, "w") != result_key(b, "w")

    def test_key_depends_on_workload_and_code_version(self):
        m = generic_multicomputer("mesh", (2, 2))
        assert result_key(m, "a") != result_key(m, "b")
        assert result_key(m, "a", version="v1") != \
            result_key(m, "a", version="v2")

    def test_code_version_is_stable(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16

    def test_default_workload_id_unwraps_partial(self):
        wid = default_workload_id(
            functools.partial(counting_runner, log_path="x"))
        assert wid.endswith("counting_runner")
        assert default_workload_id(echo_runner).endswith("echo_runner")


class TestProgressAndTiming:
    def test_progress_reports_every_row_in_order(self):
        seen = []
        rows = bw_sweep([1.0, 2.0, 4.0]).run(
            echo_runner, workers=2,
            progress=lambda done, total, row: seen.append((done, total,
                                                           row["bw"])))
        assert seen == [(1, 3, 1.0), (2, 3, 2.0), (3, 3, 4.0)]
        assert len(rows) == 3

    def test_progress_includes_cache_hits(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        bw_sweep([1.0, 2.0]).run(echo_runner, cache=cache)
        seen = []
        bw_sweep([1.0, 2.0]).run(
            echo_runner, cache=cache,
            progress=lambda done, total, row: seen.append(done))
        assert seen == [1, 2]
        assert cache.stats.hits == 2

    def test_progress_reaches_total_on_mixed_warm_cache(self, tmp_path):
        """Regression for streamed job progress: rows served straight
        from the cache (never entering the pool) must still fire
        ``progress``, and a partially-warm sweep must count through to
        100% — hits first, then executed variants, no gaps."""
        cache = ResultCache(str(tmp_path))
        bw_sweep([1.0, 4.0]).run(echo_runner, cache=cache)
        seen = []
        rows = bw_sweep([1.0, 2.0, 4.0]).run(
            echo_runner, cache=cache,
            progress=lambda done, total, row: seen.append((done, total,
                                                           row["bw"])))
        # Cache hits (bw 1.0, 4.0) stream first, then the one miss.
        assert seen == [(1, 3, 1.0), (2, 3, 4.0), (3, 3, 2.0)]
        assert [r["bw"] for r in rows] == [1.0, 2.0, 4.0]
        # Stats span both runs: 2 warm-up misses, then 2 hits + 1 miss.
        assert cache.stats.hits == 2 and cache.stats.misses == 3

    def test_timing_adds_wall_time_column(self):
        rows = bw_sweep([1.0, 2.0]).run(echo_runner, timing=True)
        assert all("wall_time_s" in r for r in rows)
        assert all(r["wall_time_s"] >= 0.0 for r in rows)

    def test_timing_off_by_default(self):
        rows = bw_sweep([1.0]).run(echo_runner)
        assert "wall_time_s" not in rows[0]

    def test_wall_time_never_cached(self, tmp_path):
        """Cached rows must stay deterministic: wall times are recomputed
        (0.0 for hits), never read back from the cache."""
        cache = ResultCache(str(tmp_path))
        first = bw_sweep([1.0]).run(echo_runner, cache=cache, timing=True)
        again = bw_sweep([1.0]).run(echo_runner, cache=cache, timing=True)
        assert again[0]["wall_time_s"] == 0.0
        # And a timing-free re-run sees no timing key at all.
        plain = bw_sweep([1.0]).run(echo_runner, cache=cache)
        assert "wall_time_s" not in plain[0]
        assert first[0]["bw_out"] == plain[0]["bw_out"]

    def test_timing_rows_otherwise_identical_to_serial(self):
        timed = bw_sweep([1.0, 2.0]).run(pingpong_runner, workers=2,
                                         timing=True)
        plain = bw_sweep([1.0, 2.0]).run(pingpong_runner)
        stripped = [{k: v for k, v in r.items() if k != "wall_time_s"}
                    for r in timed]
        assert stripped == plain

    def test_progress_with_error_rows(self):
        seen = []
        rows = bw_sweep([1.0, 2.0]).run(
            failing_runner,
            progress=lambda done, total, row: seen.append("error" in row))
        assert seen == [False, True]
        assert "error" in rows[1]


class TestPoolFallback:
    def test_unpicklable_runner_falls_back_inline(self):
        """A lambda can't cross the process boundary; the sweep must
        still complete (in-process) rather than die on a pickle error."""
        rows = bw_sweep([1.0, 2.0]).run(
            lambda m: {"bw_out": m.network.link_bandwidth}, workers=2)
        assert [r["bw_out"] for r in rows] == [1.0, 2.0]
