"""Fat-tree multistage interconnect: switch nodes and fat links."""

from __future__ import annotations

import pytest

from repro import Workbench
from repro.apps import alltoall_task_traces, pingpong_task_traces
from repro.core.config import (
    ConfigError,
    MachineConfig,
    NetworkConfig,
    TopologyConfig,
)
from repro.commmodel import MultiNodeModel
from repro.operations import recv, send
from repro.topology import build_topology, fat_tree, node_count


def machine(arity=2, height=3, switching="virtual_cut_through"
            ) -> MachineConfig:
    return MachineConfig(
        name="fattree",
        network=NetworkConfig(
            topology=TopologyConfig(kind="fat_tree", dims=(arity, height)),
            routing="shortest_path",
            switching=switching)).validate()


class TestTopology:
    def test_shape(self):
        t = fat_tree(2, 3)
        assert t.n_endpoints == 8
        assert t.n == 8 + 4 + 2 + 1
        assert t.has_switches
        assert t.is_endpoint(7) and not t.is_endpoint(8)
        assert t.is_connected()

    def test_arity_4(self):
        t = fat_tree(4, 2)
        assert t.n_endpoints == 16
        assert t.n == 16 + 4 + 1

    def test_fat_link_capacities_double_per_level(self):
        t = fat_tree(2, 3)
        # Leaf links (0..7 to first-level switches) carry 1.0.
        assert t.link_capacity(0, 8) == 1.0
        # Each level up doubles.
        lvl1 = t.link_capacity(8, 12)
        lvl2 = t.link_capacity(12, 14)
        assert lvl1 == 2.0 and lvl2 == 4.0

    def test_leaf_distance(self):
        t = fat_tree(2, 3)
        d = t.shortest_path_lengths(0)
        assert d[1] == 2          # siblings via one switch
        assert d[7] == 6          # opposite side via the root

    def test_node_count_counts_leaves_only(self):
        cfg = TopologyConfig(kind="fat_tree", dims=(2, 3))
        assert node_count(cfg) == 8
        assert build_topology(cfg).n_endpoints == 8

    def test_bad_shape(self):
        with pytest.raises(ConfigError):
            fat_tree(1, 3)
        with pytest.raises(ConfigError):
            fat_tree(2, 0)


class TestSimulation:
    def test_machine_n_nodes_is_endpoints(self):
        m = machine()
        assert m.n_nodes == 8
        net = MultiNodeModel(m)
        assert net.n_nodes == 8
        assert len(net.nics) == 8

    def test_traffic_routes_through_switches(self):
        net = MultiNodeModel(machine())
        res = net.run([[send(1024, 7)], [], [], [], [], [], [],
                       [recv(0)]])
        assert res.messages_delivered == 1
        # The path 0 -> 7 crosses the root: root links saw traffic.
        used = {k for k, v in res.link_utilization.items() if v > 0}
        assert any(int(k.split("->")[0]) >= 8 for k in used)

    def test_all_to_all_completes(self):
        wb = Workbench(machine())
        res = wb.run_comm_only(alltoall_task_traces(8, block_bytes=1024))
        assert res.messages_delivered == 8 * 7

    def test_full_bisection_beats_thin_tree(self):
        """The fat links are the point: the same traffic on a plain
        tree (every link capacity 1) takes longer."""
        fat = Workbench(machine()).run_comm_only(
            alltoall_task_traces(8, block_bytes=4096)).total_cycles

        # Thin tree: same shape but no capacity scaling — emulate by
        # building the machine around the plain `tree` topology with
        # endpoints at the leaves... the plain tree builder makes all
        # nodes endpoints, so instead thin out the fat tree manually.
        thin_topo = fat_tree(2, 3)
        thin_topo._capacity = {}          # all multipliers back to 1.0
        m = machine()
        net = MultiNodeModel(m)
        # Rebuild the engine over the thinned topology.
        from repro.commmodel import make_routing, make_switching
        net.topology = thin_topo
        net.routing = make_routing("shortest_path", thin_topo)
        net.engine = make_switching(net.sim, m.network, thin_topo,
                                    net.routing, net._on_delivery)
        for nic in net.nics:
            nic.inject = net.engine.inject
        thin = net.run(alltoall_task_traces(8, block_bytes=4096)
                       ).total_cycles
        assert fat < thin

    def test_wormhole_on_fat_tree(self):
        wb = Workbench(machine(switching="wormhole"))
        res = wb.run_comm_only(pingpong_task_traces(8, size=2048,
                                                    repeats=2, b=7))
        assert res.messages_delivered == 4

    def test_hybrid_application_runs(self):
        from repro.apps import make_reduction
        wb = Workbench(machine())
        res = wb.run_hybrid(make_reduction(local_elems=16))
        assert res.total_cycles > 0
