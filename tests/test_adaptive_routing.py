"""Random-minimal (adaptive) routing."""

from __future__ import annotations

import pytest

from repro.commmodel import MultiNodeModel, RandomMinimalRouting, make_routing
from repro.core.config import (
    ConfigError,
    MachineConfig,
    NetworkConfig,
    TopologyConfig,
)
from repro.operations import recv, send
from repro.topology import mesh, torus


class TestPaths:
    def test_paths_minimal_and_valid(self):
        topo = torus(4, 4)
        r = RandomMinimalRouting(topo, seed=3)
        for src in range(topo.n):
            dist = topo.shortest_path_lengths(src)
            for dst in range(topo.n):
                if src == dst:
                    assert r.path(src, dst) == [src]
                    continue
                for _ in range(3):
                    path = r.path(src, dst)
                    assert path[0] == src and path[-1] == dst
                    assert len(path) - 1 == dist[dst]
                    for u, v in zip(path, path[1:]):
                        assert v in topo.neighbors(u)

    def test_samples_multiple_paths(self):
        topo = mesh(4, 4)
        r = RandomMinimalRouting(topo, seed=1)
        paths = {tuple(r.path(0, 15)) for _ in range(50)}
        assert len(paths) > 3    # many distinct minimal routes used

    def test_seed_determinism(self):
        topo = mesh(4, 4)
        a = RandomMinimalRouting(topo, seed=9)
        b = RandomMinimalRouting(topo, seed=9)
        for _ in range(20):
            assert a.path(0, 15) == b.path(0, 15)

    def test_make_routing(self):
        assert isinstance(make_routing("random_minimal", mesh(2, 2)),
                          RandomMinimalRouting)


class TestConfigGuards:
    def test_wormhole_combination_rejected(self):
        cfg = NetworkConfig(routing="random_minimal", switching="wormhole")
        with pytest.raises(ConfigError, match="deadlock"):
            cfg.validate()

    def test_buffered_switching_allowed(self):
        NetworkConfig(routing="random_minimal",
                      switching="virtual_cut_through").validate()


class TestLoadSpreading:
    def _machine(self, routing: str) -> MachineConfig:
        return MachineConfig(
            name=f"adaptive-{routing}",
            network=NetworkConfig(
                topology=TopologyConfig(kind="mesh", dims=(4, 4)),
                routing=routing,
                switching="virtual_cut_through",
                packet_bytes=256,
                send_overhead=0.0, recv_overhead=0.0)).validate()

    def _run(self, routing: str):
        net = MultiNodeModel(self._machine(routing))
        n = net.n_nodes
        # Transpose-like permutation traffic: (r, c) -> (c, r); it
        # concentrates on the diagonal under dimension-order routing.
        streams = []
        for me in range(n):
            r_, c_ = divmod(me, 4)
            partner = c_ * 4 + r_
            if partner == me:
                streams.append([])
            else:
                streams.append([send(8192, partner), recv(partner)])
        net.run(streams)
        return net

    def test_adaptive_spreads_load(self):
        deterministic = self._run("dimension_order")
        adaptive = self._run("random_minimal")
        det_max = deterministic.engine.max_link_utilization()
        ada_max = adaptive.engine.max_link_utilization()
        assert ada_max < det_max

    def test_all_messages_still_delivered(self):
        net = self._run("random_minimal")
        assert net.engine.messages_delivered == 12   # 16 - 4 diagonal
