"""Observability layer: Tracer, Chrome export, MetricRegistry.

Covers the record/ring-buffer semantics, the structural contract of the
Chrome ``trace_event`` exporter (plus a golden snapshot of a full
pingpong trace), registry namespacing/flattening, and the end-to-end
wiring through the communication model.
"""

from __future__ import annotations

import json

import pytest

from repro.commmodel.message import reset_message_ids
from repro.commmodel.network import MultiNodeModel
from repro.observe import MetricRegistry, Tracer, validate_chrome_trace
from repro.pearl import Channel, Resource, Simulator, TallyMonitor
from repro import generic_multicomputer
from repro.apps import pingpong_task_traces

from .test_determinism import check_golden


# ---------------------------------------------------------------------------
# Tracer core
# ---------------------------------------------------------------------------

class TestTracer:
    def test_records_and_counts(self):
        tracer = Tracer()
        tracer.span("process", "hold", 0.0, 5.0, "p0")
        tracer.instant("channel", "send", 1.0, "ch")
        tracer.counter(2.0, "queue", 3)
        assert len(tracer) == 3
        assert tracer.emitted == 3
        assert tracer.dropped == 0
        assert tracer.counts_by_category() == {
            "process": 1, "channel": 1, "occupancy": 1}

    def test_ring_buffer_keeps_last_n(self):
        tracer = Tracer(capacity=3)
        for i in range(10):
            tracer.instant("kernel", "step", float(i), "p")
        assert len(tracer) == 3
        assert tracer.emitted == 10
        assert tracer.dropped == 7
        assert [r.ts for r in tracer.records] == [7.0, 8.0, 9.0]

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_clear(self):
        tracer = Tracer()
        tracer.instant("kernel", "step", 0.0, "p")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.emitted == 0


class TestChromeExport:
    def _small_trace(self) -> Tracer:
        tracer = Tracer()
        tracer.span("process", "hold", 0.0, 5.0, "p0")
        tracer.instant("channel", "send", 1.0, "ch", {"n": 1})
        tracer.counter(2.0, "nic0.buffered", 2, cat="nic")
        return tracer

    def test_document_shape(self):
        doc = self._small_trace().to_chrome()
        counts = validate_chrome_trace(doc)
        # 3 tracks (p0, ch, nic0.buffered) → 3 metadata events.
        assert counts == {"M": 3, "X": 1, "i": 1, "C": 1}
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M"}
        assert names == {"p0", "ch", "nic0.buffered"}

    def test_span_and_instant_fields(self):
        doc = self._small_trace().to_chrome()
        span = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert span["dur"] == 5.0
        instant = next(e for e in doc["traceEvents"] if e["ph"] == "i")
        assert instant["s"] == "t"

    def test_export_writes_valid_json(self, tmp_path):
        out = tmp_path / "trace.json"
        doc = self._small_trace().export_chrome(str(out))
        on_disk = json.loads(out.read_text())
        assert on_disk == json.loads(json.dumps(doc))
        validate_chrome_trace(on_disk)

    def test_validator_rejects_broken_documents(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})
        with pytest.raises(ValueError, match="phase"):
            validate_chrome_trace({"traceEvents": [{"name": "x"}]})
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 1.0}]})
        with pytest.raises(ValueError, match="timestamp"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "i", "name": "x", "pid": 0, "tid": 0, "ts": -1}]})


# ---------------------------------------------------------------------------
# Kernel + primitive wiring
# ---------------------------------------------------------------------------

class TestKernelWiring:
    def test_hold_and_step_records(self):
        sim = Simulator()
        tracer = Tracer()
        sim.attach_tracer(tracer)

        def proc():
            yield 2.0
        sim.process(proc(), name="worker")
        sim.run()
        cats = tracer.counts_by_category()
        assert cats["kernel"] == 2          # start + resume
        assert cats["process"] == 1         # one hold span
        hold = next(r for r in tracer.records if r.cat == "process")
        assert (hold.ts, hold.dur, hold.tid) == (0.0, 2.0, "worker")

    def test_channel_records(self):
        sim = Simulator()
        tracer = Tracer()
        sim.attach_tracer(tracer)
        ch = Channel(sim, name="pipe")

        def sender():
            yield ch.send("x")

        def receiver():
            yield ch.receive()
        sim.process(sender())
        sim.process(receiver())
        sim.run()
        names = [(r.name, r.tid) for r in tracer.records
                 if r.cat == "channel"]
        assert names == [("send", "pipe"), ("recv", "pipe")]

    def test_resource_records(self):
        sim = Simulator()
        tracer = Tracer()
        sim.attach_tracer(tracer)
        res = Resource(sim, capacity=1, name="bus")

        def user(delay):
            yield delay
            yield from res.use(5.0)
        sim.process(user(0.0))
        sim.process(user(1.0))
        sim.run()
        events = [r.name for r in tracer.records
                  if r.cat == "resource" and r.ph == "i"]
        # First acquires, second queues, two releases.
        assert events == ["acquire", "enqueue", "release", "release"]

    def test_detached_simulation_emits_nothing(self):
        sim = Simulator()

        def proc():
            yield 1.0
        sim.process(proc())
        sim.run()
        assert sim.tracer is None


# ---------------------------------------------------------------------------
# MetricRegistry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_monitor_and_callable_sources(self):
        reg = MetricRegistry()
        lat = reg.tally("net.latency")
        reg.register("nic", lambda: {"sent": 3, "wait": {"mean": 1.5}})
        lat.record(10.0)
        snap = reg.snapshot()
        assert snap["net.latency.count"] == 1
        assert snap["net.latency.mean"] == 10.0
        assert snap["nic.sent"] == 3
        assert snap["nic.wait.mean"] == 1.5          # nested flattening
        assert "net.latency.name" not in snap        # labels skipped

    def test_duplicate_namespace_rejected(self):
        reg = MetricRegistry()
        reg.tally("a")
        with pytest.raises(ValueError, match="already registered"):
            reg.register("a", TallyMonitor("a"))

    def test_bad_source_rejected(self):
        with pytest.raises(TypeError):
            MetricRegistry().register("x", object())
        with pytest.raises(ValueError):
            MetricRegistry().register("", TallyMonitor())

    def test_introspection(self):
        reg = MetricRegistry()
        m = reg.tally("first")
        reg.tally("second")
        assert len(reg) == 2
        assert "first" in reg and "third" not in reg
        assert reg.namespaces() == ["first", "second"]
        assert reg.get("first") is m

    def test_rows_are_sorted(self):
        reg = MetricRegistry()
        reg.register("b", lambda: {"v": 2})
        reg.register("a", lambda: {"v": 1})
        rows = reg.rows()
        assert [r["metric"] for r in rows] == ["a.v", "b.v"]


# ---------------------------------------------------------------------------
# End-to-end: communication model with tracer + registry
# ---------------------------------------------------------------------------

def traced_pingpong():
    """Deterministic pingpong run on the 2x2 mesh with a tracer attached."""
    reset_message_ids()
    machine = generic_multicomputer("mesh", (2, 2))
    model = MultiNodeModel(machine)
    tracer = Tracer()
    model.sim.attach_tracer(tracer)
    result = model.run(list(pingpong_task_traces(
        model.n_nodes, size=256, repeats=2, b=model.n_nodes - 1)))
    return model, tracer, result


class TestModelWiring:
    def test_model_trace_has_all_record_kinds(self):
        _model, tracer, result = traced_pingpong()
        cats = tracer.counts_by_category()
        for cat in ("kernel", "process", "resource", "network",
                    "message", "nic"):
            assert cats.get(cat, 0) > 0, f"no {cat} records"
        assert result.events_executed > 0
        doc = tracer.to_chrome()
        validate_chrome_trace(doc)

    def test_registry_covers_every_component(self):
        model, _tracer, _result = traced_pingpong()
        snap = model.registry.snapshot()
        assert snap["network.message_latency.count"] > 0
        assert snap["network.traffic.messages_delivered"] > 0
        assert snap["network.packet_latency.mean"] > 0
        assert snap["node0.nic.messages_sent"] > 0
        assert snap["node0.activity.ops_processed"] > 0
        # One activity + one nic namespace per node.
        nodes = model.n_nodes
        assert sum(ns.endswith(".nic") for ns in
                   model.registry.namespaces()) == nodes

    def test_external_registry_is_used(self):
        reg = MetricRegistry()
        machine = generic_multicomputer("mesh", (2, 2))
        model = MultiNodeModel(machine, registry=reg)
        assert model.registry is reg
        assert "network.message_latency" in reg

    def test_golden_chrome_trace_pingpong(self):
        """The full exported Chrome trace is deterministic and pinned.

        Regenerate with ``REPRO_REGEN_GOLDEN=1`` after intentional
        semantic changes.
        """
        _model, tracer, _result = traced_pingpong()
        check_golden("chrome_trace_pingpong", tracer.to_chrome())

    def test_trace_is_reproducible(self):
        def shape():
            _m, tracer, _r = traced_pingpong()
            return [(r.ph, r.cat, r.name, r.ts, r.dur, r.tid)
                    for r in tracer.records]
        assert shape() == shape()
