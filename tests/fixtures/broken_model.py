"""Deliberately broken pearl model: the ``repro lint`` golden fixture.

Every lint rule family fires at least once here — determinism hazards
(PY001/PY002/PY003), pearl-API misuse (PY010/PY011/PY012/PY013) and
process hygiene (PY020/PY021) — plus one suppressed finding to pin the
``# repro: noqa[...]`` behavior.  The code never runs (nothing imports
it at runtime); it only needs to parse and to keep ruff's pyflakes
rules quiet, hence the pro-forma uses of every binding.
"""

import random
import time

import numpy as np


def jittery_driver(sim, chan):
    """PY001 (unseeded + global-state RNG), PY002, and one noqa."""
    rng = np.random.default_rng()                # PY001: no seed
    jitter = random.random()                     # PY001: global state
    t_host = time.time()                         # PY002: wall clock
    t_ok = time.time()  # repro: noqa[PY002]
    yield chan.send((rng.integers(8), jitter, t_host, t_ok))


def set_fanout(sim, links):
    """PY003: set iteration order decides event emission order."""
    for peer in {1, 2, 3}:                       # PY003
        yield links.send(peer)


def confused_worker(sim, res, chan):
    """PY010, PY011 and PY013 in one process body."""
    yield "warmup"                               # PY010: yields a str
    chan.send(41)                                # PY011: event discarded
    yield -2.5                                   # PY013: negative hold
    yield from res.use(-1.0)                     # PY013: negative hold
    yield chan.receive()


def leaky_worker(sim, res):
    """PY012: the early-return path skips ``res.release()``."""
    grant = res.acquire()                        # PY012
    yield grant
    if sim.now > 100:
        return                                   # leaks the grant
    yield 5.0
    res.release()


def impatient_waiter(sim, res):
    """PY021: the second yield re-waits on a completed event."""
    ready = res.acquire()
    yield ready
    yield 1.0
    yield ready                                  # PY021: already consumed
    res.release()


def silent_reporter(sim, chan):
    """PY020: registered fire-and-forget below, result unobservable."""
    total = 0
    while sim.now < 10:
        msg = yield chan.receive()
        total += msg
    return total                                 # PY020


def build(sim, res, chan, links):
    """Register the broken processes (drives process classification)."""
    sim.process(jittery_driver(sim, chan))
    sim.process(set_fanout(sim, links))
    sim.process(confused_worker(sim, res, chan))
    sim.process(leaky_worker(sim, res))
    sim.process(impatient_waiter(sim, res))
    sim.process(silent_reporter(sim, chan))      # handle discarded: PY020
