"""Seeded schedule-sensitivity fixtures for ``repro.verify``.

Module-level factories (picklable, so sharded exploration works) that
each build a fresh two-process Pearl model with a known verdict:

* :func:`race_factory` — a *confirmed race*: whichever contender
  acquires the lock first wins, so the result summary depends on
  same-time tie-breaking (KV001);
* :func:`benign_factory` — same contention shape, but the result is
  order-independent (KV002);
* :func:`deadlock_factory` — an alternative same-time ordering reaches
  a wait cycle (KV003);
* :func:`wide_race_factory` — the race plus two independent same-time
  compute processes: naive burst permutation plans many orderings,
  DPOR plans only the contention cluster's.

``python -m tests.fixtures.race_model`` is the CI smoke entry: it
explores :func:`race_factory` and exits 0 only if the explorer
*catches* the seeded race with a counterexample.
"""

from __future__ import annotations

from repro.pearl import Simulator
from repro.pearl.resource import Resource

__all__ = ["benign_factory", "deadlock_factory", "race_factory",
           "wide_race_factory"]


def race_factory():
    """Two contenders; the summary records who acquired first."""
    sim = Simulator()
    result: dict[str, str] = {}
    res = Resource(sim, 1, name="lock")

    def contender(tag):
        def proc():
            yield res.acquire()
            result.setdefault("first", tag)
            yield 5.0
            res.release()
        return proc

    sim.process(contender("A")(), name="A")
    sim.process(contender("B")(), name="B")

    def run():
        sim.run(check_deadlock=True)
        return dict(result)
    return sim, run


def benign_factory():
    """Same contention shape as :func:`race_factory`, commutative result."""
    sim = Simulator()
    result = {"acquired": 0}
    res = Resource(sim, 1, name="lock")

    def contender():
        yield res.acquire()
        result["acquired"] += 1
        yield 5.0
        res.release()

    sim.process(contender(), name="A")
    sim.process(contender(), name="B")

    def run():
        sim.run(check_deadlock=True)
        return dict(result)
    return sim, run


def deadlock_factory():
    """Waiter-before-releaser ordering blocks both processes forever."""
    sim = Simulator()
    res = Resource(sim, 1, name="lock")
    gate = sim.event("gate")

    def releaser():
        yield res.acquire()
        gate.trigger("go")
        res.release()

    def waiter():
        yield res.acquire()
        yield gate
        res.release()

    sim.process(releaser(), name="releaser")
    sim.process(waiter(), name="waiter")

    def run():
        sim.run(check_deadlock=True)
        return {"done": True}
    return sim, run


def wide_race_factory():
    """The race of :func:`race_factory` among independent bystanders.

    C and D share nothing with anyone, so DPOR never permutes them —
    only the lock cluster's one alternative ordering is planned.  Naive
    mode permutes the whole four-candidate t=0 dispatch burst.
    """
    sim, run = race_factory()

    def bystander():
        yield 1.0

    sim.process(bystander(), name="C")
    sim.process(bystander(), name="D")
    return sim, run


def main() -> int:
    """CI smoke: exit 0 iff the seeded race is caught with evidence."""
    from repro.verify import ScheduleExplorer

    result = ScheduleExplorer(budget=16).explore(race_factory)
    print(result.report("fixture:race_model").format())
    caught = (not result.ok and len(result.races) == 1
              and result.races[0].counterexample)
    print(f"seeded race {'caught' if caught else 'MISSED'}; "
          f"certificate {result.certificate}")
    return 0 if caught else 1


if __name__ == "__main__":
    raise SystemExit(main())
