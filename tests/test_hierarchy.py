"""Cache hierarchy latency composition (uniprocessor analytic path)."""

from __future__ import annotations

import pytest

from repro.core.config import (
    BusConfig,
    CacheConfig,
    CacheLevelConfig,
    MemoryConfig,
)
from repro.compmodel import AccessKind, CacheHierarchy


BUS = BusConfig(width_bytes=8, cycles_per_beat=1.0, arbitration_cycles=1.0)
MEM = MemoryConfig(access_cycles=20.0, cycles_per_word=2.0, word_bytes=8)


def make_hierarchy(levels):
    return CacheHierarchy(levels, BUS, MEM)


def one_level(**kw):
    defaults = dict(size_bytes=1024, line_bytes=32, associativity=2,
                    hit_cycles=1.0)
    defaults.update(kw)
    return [CacheLevelConfig(data=CacheConfig(**defaults))]


def line_fill_cost(line_bytes=32):
    """bus arb + bus transfer + DRAM line fill, per the configs above."""
    beats = -(-line_bytes // BUS.width_bytes)
    words = -(-line_bytes // MEM.word_bytes)
    return (BUS.arbitration_cycles + beats * BUS.cycles_per_beat
            + MEM.access_cycles + (words - 1) * MEM.cycles_per_word)


class TestSingleLevel:
    def test_cold_miss_then_hit(self):
        h = make_hierarchy(one_level())
        miss = h.access_cycles(AccessKind.READ, 0x100, 8)
        assert miss == pytest.approx(1.0 + line_fill_cost())
        hit = h.access_cycles(AccessKind.READ, 0x100, 8)
        assert hit == pytest.approx(1.0)

    def test_cacheless_goes_to_memory(self):
        h = make_hierarchy([])
        cost = h.access_cycles(AccessKind.READ, 0x0, 8)
        # 8-byte access: 1 beat + arb + single-word DRAM access.
        assert cost == pytest.approx(1.0 + 1.0 + 20.0)

    def test_line_spanning_access_costs_two_lines(self):
        h = make_hierarchy(one_level())
        spanning = h.access_cycles(AccessKind.READ, 0x100 + 28, 8)
        assert spanning == pytest.approx(2 * (1.0 + line_fill_cost()))

    def test_write_allocate_fills_line(self):
        h = make_hierarchy(one_level(write_allocate=True))
        h.access_cycles(AccessKind.WRITE, 0x200, 8)
        assert h.data_path[0].contains(0x200)

    def test_write_no_allocate_bypasses(self):
        h = make_hierarchy(one_level(write_allocate=False))
        cost = h.access_cycles(AccessKind.WRITE, 0x200, 8)
        assert not h.data_path[0].contains(0x200)
        assert h.memory.writes == 1
        assert cost > 1.0

    def test_dirty_eviction_adds_writeback(self):
        # Direct-mapped cache: two addresses mapping to the same set.
        h = make_hierarchy(one_level(size_bytes=128, line_bytes=32,
                                     associativity=1))
        h.access_cycles(AccessKind.WRITE, 0x000, 8)     # dirty line in set 0
        clean_fill = 1.0 + line_fill_cost()
        cost = h.access_cycles(AccessKind.READ, 0x080, 8)  # evicts dirty
        assert cost == pytest.approx(clean_fill + line_fill_cost())
        assert h.memory.writes == 1


class TestTwoLevels:
    def two_level(self):
        return [
            CacheLevelConfig(data=CacheConfig(
                name="L1", size_bytes=256, line_bytes=32, associativity=2,
                hit_cycles=1.0)),
            CacheLevelConfig(data=CacheConfig(
                name="L2", size_bytes=4096, line_bytes=32, associativity=4,
                hit_cycles=6.0)),
        ]

    def test_l2_hit_cost(self):
        h = make_hierarchy(self.two_level())
        h.access_cycles(AccessKind.READ, 0x100, 8)          # fill both
        # Evict from L1 by filling its set (set count = 256/32/2 = 4 sets).
        for i in range(1, 3):
            h.access_cycles(AccessKind.READ, 0x100 + i * 0x80, 8)
        assert not h.data_path[0].contains(0x100)
        assert h.data_path[1].contains(0x100)
        cost = h.access_cycles(AccessKind.READ, 0x100, 8)
        assert cost == pytest.approx(1.0 + 6.0)             # L1 miss + L2 hit

    def test_full_miss_costs_both_tag_checks(self):
        h = make_hierarchy(self.two_level())
        cost = h.access_cycles(AccessKind.READ, 0x100, 8)
        assert cost == pytest.approx(1.0 + 6.0 + line_fill_cost())

    def test_victim_resident_below_writes_back_cheaply(self):
        h = make_hierarchy(self.two_level())
        h.access_cycles(AccessKind.WRITE, 0x000, 8)
        # Thrash set 0 of L1 to evict the dirty line; L2 holds it.
        h.access_cycles(AccessKind.READ, 0x080, 8)
        mem_writes_before = h.memory.writes
        h.access_cycles(AccessKind.READ, 0x100, 8)   # evicts dirty 0x000
        assert h.memory.writes == mem_writes_before   # absorbed by L2
        from repro.compmodel import LineState
        assert h.data_path[1].probe(0x000) is LineState.MODIFIED


class TestWriteThrough:
    def test_write_through_propagates_traffic(self):
        levels = one_level(write_policy="write-through")
        h = make_hierarchy(levels)
        h.access_cycles(AccessKind.READ, 0x100, 8)    # fill
        writes_before = h.memory.writes
        hit_cost = h.access_cycles(AccessKind.WRITE, 0x100, 8)
        assert hit_cost == pytest.approx(1.0)          # no stall
        assert h.memory.writes == writes_before + 1    # traffic counted
        from repro.compmodel import LineState
        assert h.data_path[0].probe(0x100) is LineState.SHARED


class TestSplitL1:
    def split(self):
        return [CacheLevelConfig(
            data=CacheConfig(name="L1d", size_bytes=256, line_bytes=32,
                             associativity=2),
            instr=CacheConfig(name="L1i", size_bytes=256, line_bytes=32,
                              associativity=2))]

    def test_ifetch_uses_instruction_path(self):
        h = make_hierarchy(self.split())
        h.access_cycles(AccessKind.IFETCH, 0x400000, 4)
        assert h.instr_path[0].contains(0x400000)
        assert not h.data_path[0].contains(0x400000)

    def test_data_uses_data_path(self):
        h = make_hierarchy(self.split())
        h.access_cycles(AccessKind.READ, 0x100, 8)
        assert h.data_path[0].contains(0x100)
        assert not h.instr_path[0].contains(0x100)

    def test_unified_level_shares(self):
        h = make_hierarchy(one_level())
        h.access_cycles(AccessKind.IFETCH, 0x500, 4)
        assert h.data_path[0].contains(0x500)


class TestSummary:
    def test_summary_structure(self):
        h = make_hierarchy(one_level())
        h.access_cycles(AccessKind.READ, 0, 8)
        s = h.summary()
        assert "caches" in s and "bus" in s and "memory" in s
        assert s["memory"]["reads"] == 1
