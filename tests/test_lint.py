"""``repro lint`` — the source-level analyzer over the pearl DSL.

Covers the CFG builder, each rule family on minimal positive/negative
cases, inline ``# repro: noqa`` suppressions, baselines (including a
hypothesis round-trip property), the incremental cache, dogfooding on
the shipped apps/examples, and the CLI surface (``repro lint`` and
``repro check --code``).
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import RULES, Severity, lint_source
from repro.check.lint import (
    LINT_PASSES,
    Baseline,
    LintCache,
    build_cfg,
    fingerprint,
    lint_file,
    lint_key,
    lint_paths,
    lint_rules_version,
    parse_module,
)
from repro.cli import main
from tests.test_check import check_golden

REPO = Path(__file__).parent.parent
FIXTURE = Path(__file__).parent / "fixtures" / "broken_model.py"
FIXTURE_LABEL = "tests/fixtures/broken_model.py"


def rules_of(result):
    return sorted(d.rule for d in result.report.diagnostics)


def func_cfg(source: str):
    tree = ast.parse(source)
    func = next(n for n in ast.walk(tree)
                if isinstance(n, ast.FunctionDef))
    return build_cfg(func)


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------

class TestCFG:
    def test_linear_chain(self):
        cfg = func_cfg("def f():\n    a = 1\n    b = 2\n    return b\n")
        # entry -> a -> b -> return -> exit, single path
        assert cfg.entry.succ and cfg.exit.succ == set()
        stmts = [n.stmt for n in cfg.nodes if n.stmt is not None]
        assert len(stmts) == 3

    def test_if_has_both_edges(self):
        cfg = func_cfg(
            "def f(c):\n    if c:\n        x = 1\n    y = 2\n")
        test_node = next(n for n in cfg.nodes
                         if isinstance(n.stmt, ast.If))
        # Branch taken and fall-through both leave the test node.
        assert len(test_node.succ) == 2

    def test_while_loops_back_and_breaks_out(self):
        cfg = func_cfg(
            "def f(c):\n"
            "    while c:\n"
            "        if c > 2:\n"
            "            break\n"
            "        c += 1\n"
            "    return c\n")
        head = next(n for n in cfg.nodes if isinstance(n.stmt, ast.While))
        body_tail = next(n for n in cfg.nodes
                         if isinstance(n.stmt, ast.AugAssign))
        assert head.index in body_tail.succ          # loop back edge
        ret = next(n for n in cfg.nodes if isinstance(n.stmt, ast.Return))
        break_node = next(n for n in cfg.nodes
                          if isinstance(n.stmt, ast.Break))
        assert ret.index in break_node.succ          # break exits the loop

    def test_finally_inlined_on_return_path(self):
        cfg = func_cfg(
            "def f(res):\n"
            "    try:\n"
            "        if res:\n"
            "            return 1\n"
            "        x = 2\n"
            "    finally:\n"
            "        res.release()\n"
            "    return x\n")
        ret_one = next(n for n in cfg.nodes
                       if isinstance(n.stmt, ast.Return)
                       and isinstance(n.stmt.value, ast.Constant))
        # The early return must flow through a copy of the finally
        # body (a release statement), not jump straight to exit.
        assert cfg.exit.index not in ret_one.succ
        succ_stmt = cfg.nodes[next(iter(ret_one.succ))].stmt
        assert isinstance(succ_stmt, ast.Expr)
        assert "release" in ast.dump(succ_stmt)

    def test_exception_edge_reaches_handler(self):
        cfg = func_cfg(
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "    except ValueError:\n"
            "        handled = 1\n"
            "    return 0\n")
        risky = next(n for n in cfg.nodes
                     if n.stmt is not None and "risky" in ast.dump(n.stmt))
        handler_heads = [n.index for n in cfg.nodes
                         if n.stmt is None
                         and n.index not in (cfg.entry.index,
                                             cfg.exit.index)]
        assert handler_heads and set(handler_heads) & risky.succ

    def test_preds_inverts_succ(self):
        cfg = func_cfg("def f(c):\n    if c:\n        x = 1\n    y = 2\n")
        preds = cfg.preds()
        for node in cfg.nodes:
            for succ in node.succ:
                assert node.index in preds[succ]


# ---------------------------------------------------------------------------
# Parsed-module model
# ---------------------------------------------------------------------------

class TestSourceModule:
    def test_import_map_resolution(self):
        mod = parse_module(
            "import numpy as np\n"
            "from time import time as walltime\n"
            "import random\n", "m.py")
        tree = ast.parse("np.random.default_rng")
        assert mod.resolve(tree.body[0].value) == \
            "numpy.random.default_rng"
        tree = ast.parse("walltime")
        assert mod.resolve(tree.body[0].value) == "time.time"
        tree = ast.parse("rng.normal")
        assert mod.resolve(tree.body[0].value) is None  # local name

    def test_generator_and_process_classification(self):
        mod = parse_module(
            "def gen():\n    yield 1\n"
            "def plain():\n    return 1\n"
            "def run(sim):\n"
            "    p = sim.process(gen())\n"
            "    return p\n", "m.py")
        info = {f.qualname: f for f in mod.functions}
        assert info["gen"].is_generator and info["gen"].is_process
        assert info["gen"].process_observed
        assert not info["plain"].is_generator

    def test_ordinary_generator_is_not_pearl(self):
        mod = parse_module(
            "def links():\n"
            "    for i in range(4):\n"
            "        yield (i, i + 1)\n", "m.py")
        assert not mod.functions[0].is_pearl

    def test_syntax_error_reports_py000(self):
        result = lint_source("def broken(:\n", "bad.py")
        assert [d.rule for d in result.report.diagnostics] == ["PY000"]
        assert not result.report.ok


# ---------------------------------------------------------------------------
# Rule families: determinism, pearl API, hygiene
# ---------------------------------------------------------------------------

class TestDeterminismRules:
    def test_unseeded_rng_flagged_seeded_ok(self):
        bad = lint_source(
            "import numpy as np\n"
            "def f(chan):\n"
            "    rng = np.random.default_rng()\n"
            "    yield chan.send(rng.integers(4))\n", "m.py")
        assert "PY001" in rules_of(bad)
        good = lint_source(
            "import numpy as np\n"
            "def f(chan, seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    yield chan.send(rng.integers(4))\n", "m.py")
        assert rules_of(good) == []

    def test_global_random_module_flagged(self):
        result = lint_source(
            "import random\n"
            "def f():\n    return random.randint(0, 4)\n", "m.py")
        assert rules_of(result) == ["PY001"]

    def test_wall_clock_flagged(self):
        result = lint_source(
            "import time\n"
            "def f():\n    return time.time()\n", "m.py")
        assert rules_of(result) == ["PY002"]

    def test_set_iteration_feeding_emission(self):
        bad = lint_source(
            "def f(chan):\n"
            "    for p in {1, 2}:\n"
            "        yield chan.send(p)\n", "m.py")
        assert "PY003" in rules_of(bad)
        good = lint_source(
            "def f(chan):\n"
            "    for p in sorted({1, 2}):\n"
            "        yield chan.send(p)\n", "m.py")
        assert rules_of(good) == []


class TestPearlApiRules:
    def test_yield_of_non_event(self):
        result = lint_source(
            "def f(chan):\n"
            "    yield 'nope'\n"
            "    yield chan.receive()\n", "m.py")
        assert "PY010" in rules_of(result)

    def test_discarded_blocking_call(self):
        result = lint_source(
            "def f(chan):\n"
            "    chan.send(1)\n"
            "    yield chan.receive()\n", "m.py")
        assert "PY011" in rules_of(result)

    def test_yielded_blocking_call_is_fine(self):
        result = lint_source(
            "def f(chan):\n    yield chan.send(1)\n", "m.py")
        assert rules_of(result) == []

    def test_acquire_leak_on_branch(self):
        result = lint_source(
            "def f(sim, res):\n"
            "    yield res.acquire()\n"
            "    if sim.now > 5:\n"
            "        return\n"
            "    res.release()\n", "m.py")
        assert "PY012" in rules_of(result)

    def test_try_finally_release_is_fine(self):
        result = lint_source(
            "def f(sim, res):\n"
            "    yield res.acquire()\n"
            "    try:\n"
            "        yield 1.0\n"
            "    finally:\n"
            "        res.release()\n", "m.py")
        assert rules_of(result) == []

    def test_self_contained_use_is_fine(self):
        result = lint_source(
            "def f(res):\n    yield from res.use(3.0)\n", "m.py")
        assert rules_of(result) == []

    def test_two_resources_tracked_independently(self):
        result = lint_source(
            "def f(a, b):\n"
            "    yield a.acquire()\n"
            "    yield b.acquire()\n"
            "    a.release()\n", "m.py")
        flagged = [d for d in result.report.diagnostics
                   if d.rule == "PY012"]
        assert len(flagged) == 1 and "`b`" in flagged[0].message

    def test_negative_hold_literals(self):
        result = lint_source(
            "def f(res, sim):\n"
            "    yield -1\n"
            "    yield from res.use(-2.0)\n"
            "    yield sim.timeout(5)\n", "m.py")
        assert rules_of(result).count("PY013") == 2


class TestHygieneRules:
    def test_fire_and_forget_return_flagged(self):
        result = lint_source(
            "def run(sim, chan):\n"
            "    sim.process(w(chan))\n"
            "def w(chan):\n"
            "    yield chan.receive()\n"
            "    return 42\n", "m.py")
        assert "PY020" in rules_of(result)

    def test_observed_handle_return_is_fine(self):
        result = lint_source(
            "def run(sim, chan):\n"
            "    p = sim.process(w(chan))\n"
            "    return p\n"
            "def w(chan):\n"
            "    yield chan.receive()\n"
            "    return 42\n", "m.py")
        assert rules_of(result) == []

    def test_reyield_of_completed_event(self):
        result = lint_source(
            "def f(res):\n"
            "    ev = res.acquire()\n"
            "    yield ev\n"
            "    yield ev\n"
            "    res.release()\n", "m.py")
        assert "PY021" in rules_of(result)

    def test_rebound_event_in_loop_is_fine(self):
        result = lint_source(
            "def f(chan):\n"
            "    while True:\n"
            "        ev = chan.receive()\n"
            "        yield ev\n", "m.py")
        assert rules_of(result) == []

    def test_repeated_number_yield_is_fine(self):
        result = lint_source(
            "def f(chan, cycles):\n"
            "    for i in range(4):\n"
            "        yield cycles\n"
            "        yield chan.send(i)\n", "m.py")
        assert rules_of(result) == []


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------

class TestNoqa:
    SRC = ("import time\n"
           "def f(chan):\n"
           "    t = time.time(){tag}\n"
           "    yield chan.send(t)\n")

    def test_rule_specific_suppression(self):
        result = lint_source(
            self.SRC.format(tag="  # repro: noqa[PY002]"), "m.py")
        assert rules_of(result) == [] and result.suppressed == 1

    def test_blanket_suppression(self):
        result = lint_source(
            self.SRC.format(tag="  # repro: noqa"), "m.py")
        assert rules_of(result) == [] and result.suppressed == 1

    def test_wrong_rule_does_not_suppress(self):
        result = lint_source(
            self.SRC.format(tag="  # repro: noqa[PY001]"), "m.py")
        assert rules_of(result) == ["PY002"] and result.suppressed == 0


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------

class TestBaseline:
    def lint_fixture(self):
        return lint_file(FIXTURE, label=FIXTURE_LABEL)

    def test_fingerprint_ignores_location(self):
        result = self.lint_fixture()
        d = result.report.diagnostics[0]
        import dataclasses
        moved = dataclasses.replace(d, location="line 999")
        assert fingerprint(d) == fingerprint(moved)
        other = dataclasses.replace(d, message=d.message + "!")
        assert fingerprint(d) != fingerprint(other)

    def test_round_trip_and_split(self, tmp_path):
        result = self.lint_fixture()
        baseline = Baseline.from_reports([result.report])
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == baseline.entries
        new, known = loaded.split(result.report.diagnostics)
        assert new == [] and len(known) == len(result.report.diagnostics)

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert len(baseline) == 0

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError):
            Baseline.load(path)

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_baseline_subset_split_is_exact(self, data):
        """Baselining any subset leaves exactly the complement as new,
        and a save/load round trip never changes that split."""
        result = self.lint_fixture()
        diags = result.report.diagnostics
        chosen = data.draw(st.sets(
            st.sampled_from(range(len(diags))),
            max_size=len(diags)))
        baseline = Baseline(entries={
            fingerprint(diags[i]): diags[i].rule for i in chosen})
        new, known = baseline.split(diags)
        expected_new = {fingerprint(diags[i])
                        for i in range(len(diags)) if i not in chosen}
        assert {fingerprint(d) for d in new} == expected_new
        assert len(new) + len(known) == len(diags)

    @settings(max_examples=20, deadline=None)
    @given(st.sets(st.sampled_from(
        ["PY001", "PY002", "PY010", "PY011", "PY013"])))
    def test_noqa_plus_baseline_round_trip(self, suppressed_rules):
        """Suppressing any rule subset inline, then baselining the
        remainder, always leaves zero new findings — and without the
        baseline the new set is exactly the unsuppressed findings."""
        lines = {
            "PY001": "    rng = np.random.default_rng(){}",
            "PY002": "    t = time.time(){}",
            "PY010": "    yield 'bad'{}",
            "PY011": "    chan.send(str(rng) + str(t)){}",
            "PY013": "    yield -1.0{}",
        }
        src = ["import time", "import numpy as np",
               "def f(chan):"]
        for rule, template in lines.items():
            tag = f"  # repro: noqa[{rule}]" \
                if rule in suppressed_rules else ""
            src.append(template.format(tag))
        src.append("    yield chan.receive()")
        result = lint_source("\n".join(src) + "\n", "prop.py")
        seen = {d.rule for d in result.report.diagnostics}
        assert seen == set(lines) - suppressed_rules
        assert result.suppressed == len(suppressed_rules)
        baseline = Baseline.from_reports([result.report])
        new, known = baseline.split(result.report.diagnostics)
        assert new == [] and len(known) == len(result.report.diagnostics)


# ---------------------------------------------------------------------------
# Incremental cache
# ---------------------------------------------------------------------------

class TestLintCache:
    def test_warm_hit_returns_identical_report(self, tmp_path):
        cache = LintCache(tmp_path / "cache")
        cold = lint_file(FIXTURE, cache=cache, label=FIXTURE_LABEL)
        assert not cold.cached and cache.stats.misses == 1
        warm = lint_file(FIXTURE, cache=cache, label=FIXTURE_LABEL)
        assert warm.cached and cache.stats.hits == 1
        assert [d.to_dict() for d in warm.report.diagnostics] == \
            [d.to_dict() for d in cold.report.diagnostics]
        assert warm.suppressed == cold.suppressed

    def test_content_change_invalidates(self, tmp_path):
        cache = LintCache(tmp_path / "cache")
        target = tmp_path / "m.py"
        target.write_text("def f(chan):\n    yield chan.receive()\n")
        lint_file(target, cache=cache)
        target.write_text("def f(chan):\n    yield chan.send(1)\n")
        result = lint_file(target, cache=cache)
        assert not result.cached and cache.stats.misses == 2

    def test_rule_set_version_changes_key(self):
        raw = FIXTURE.read_bytes()
        assert lint_key(raw, version="v1") != lint_key(raw, version="v2")
        assert lint_key(raw) == lint_key(raw, lint_rules_version())

    def test_lint_paths_cache_rate(self, tmp_path):
        cache = LintCache(tmp_path / "cache")
        targets = [REPO / "src" / "repro" / "apps", REPO / "examples"]
        results, _ = lint_paths(targets, cache=cache)
        assert cache.stats.hits == 0 and len(results) > 5
        results2, _ = lint_paths(targets, cache=cache)
        # Acceptance bar: a second invocation is served from the cache.
        assert cache.stats.hits == len(results2)
        assert all(r.cached for r in results2)


# ---------------------------------------------------------------------------
# Golden snapshot + dogfood
# ---------------------------------------------------------------------------

class TestGoldenAndDogfood:
    def test_broken_fixture_matches_golden(self):
        result = lint_file(FIXTURE, label=FIXTURE_LABEL)
        value = {"report": result.report.to_dict(),
                 "suppressed": result.suppressed}
        check_golden("lint_broken_model", value)

    def test_all_three_families_detected(self):
        rules = set(rules_of(lint_file(FIXTURE, label=FIXTURE_LABEL)))
        assert rules & {"PY001", "PY002", "PY003"}          # determinism
        assert rules & {"PY010", "PY011", "PY012", "PY013"}  # pearl API
        assert rules & {"PY020", "PY021"}                   # hygiene

    def test_shipped_apps_and_examples_are_clean(self):
        results, new = lint_paths(
            [REPO / "src" / "repro" / "apps", REPO / "examples"])
        assert new == []
        assert all(r.report.ok for r in results)

    def test_repo_baseline_covers_full_source_tree(self):
        baseline = Baseline.load(REPO / "lint-baseline.json")
        _results, new = lint_paths([REPO / "src" / "repro"],
                                   baseline=baseline)
        assert [d.format() for d in new] == []

    def test_every_lint_rule_is_documented(self):
        for p in LINT_PASSES:
            for rule in p.rules:
                assert rule in RULES, f"{p.name} emits undocumented {rule}"
        assert "PY000" in RULES

    def test_introspect_names_exist_on_kernel_classes(self):
        from repro.pearl import (
            BLOCKING_EVENT_METHODS,
            EVENT_RETURNING_METHODS,
            RELEASE_METHODS,
            SELF_CONTAINED_HOLD_METHODS,
        )
        from repro.pearl.channel import Channel
        from repro.pearl.kernel import Simulator
        from repro.pearl.resource import Resource
        owners = {"Resource": Resource, "Channel": Channel,
                  "Simulator": Simulator}
        for method, owner in EVENT_RETURNING_METHODS.items():
            assert callable(getattr(owners[owner], method)), \
                f"{owner}.{method} disappeared; update introspect.py"
        for method in BLOCKING_EVENT_METHODS:
            assert method in EVENT_RETURNING_METHODS
        for method in SELF_CONTAINED_HOLD_METHODS:
            assert callable(getattr(Resource, method))
        for method in RELEASE_METHODS:
            assert callable(getattr(Resource, method))


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestLintCLI:
    def test_exit_one_on_new_errors(self, capsys):
        rc = main(["lint", str(FIXTURE)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "PY012" in out and "suppressed" in out

    def test_json_schema_matches_check(self, capsys):
        rc = main(["lint", str(FIXTURE), "--json"])
        data = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert data["ok"] is False
        assert {"n_errors", "n_warnings", "n_new", "n_baselined",
                "n_suppressed", "reports"} <= set(data)
        assert data["reports"][0]["diagnostics"]

    def test_baseline_gates_only_new_findings(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        rc = main(["lint", str(FIXTURE), "--baseline", str(baseline),
                   "--update-baseline"])
        assert rc == 0
        capsys.readouterr()
        rc = main(["lint", str(FIXTURE), "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "(0 new)" in out

    def test_update_baseline_requires_baseline_path(self):
        with pytest.raises(SystemExit):
            main(["lint", str(FIXTURE), "--update-baseline"])

    def test_cache_warm_run_reports_hits(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        main(["lint", str(FIXTURE), "--cache-dir", cache_dir])
        capsys.readouterr()
        main(["lint", str(FIXTURE), "--cache-dir", cache_dir])
        out = capsys.readouterr().out
        assert "cache: 1 hits, 0 misses" in out

    def test_check_code_merges_lint_reports(self, capsys):
        rc = main(["check", "--preset", "t805-grid-2x2",
                   "--code", str(FIXTURE), "--json"])
        data = json.loads(capsys.readouterr().out)
        assert rc == 1
        subjects = [r["subject"] for r in data["reports"]]
        assert any(s.endswith("broken_model.py") for s in subjects)
        assert any(s.startswith("machine:") for s in subjects)

    def test_rules_table_lists_py_rules(self, capsys):
        rc = main(["check", "--rules"])
        out = capsys.readouterr().out
        assert rc == 0 and "PY012" in out


class TestSeverityGating:
    def test_warnings_never_gate(self, tmp_path, capsys):
        target = tmp_path / "warn_only.py"
        target.write_text(
            "def run(sim, chan):\n"
            "    sim.process(w(chan))\n"
            "def w(chan):\n"
            "    yield chan.receive()\n"
            "    return 7\n")
        rc = main(["lint", str(target)])
        out = capsys.readouterr().out
        assert rc == 0 and "PY020" in out

    def test_severity_split(self):
        result = lint_file(FIXTURE, label=FIXTURE_LABEL)
        assert all(d.severity is Severity.ERROR
                   for d in result.report.errors)
        warn_rules = {d.rule for d in result.report.warnings}
        assert warn_rules == {"PY020", "PY021"}
