"""Annotation translator: annotation -> operation translation."""

from __future__ import annotations

import pytest

from repro.operations import ArithType, MemType, OpCode
from repro.tracegen import AnnotationTranslator, TargetABI


def make_translator(**abi_kw):
    ops = []
    tr = AnnotationTranslator(ops.append, TargetABI(**abi_kw))
    return tr, ops


class TestMemoryAnnotations:
    def test_memory_read_emits_ifetch_and_load(self):
        tr, ops = make_translator()
        arr = tr.declare_global("a", MemType.FLOAT64, 4)
        tr.read(arr, 2, site="s1")
        assert [op.code for op in ops] == [OpCode.IFETCH, OpCode.LOAD]
        assert ops[1].address == arr.element_address(2)
        assert ops[1].mem_type is MemType.FLOAT64

    def test_register_read_emits_nothing(self):
        tr, ops = make_translator()
        i = tr.declare_local("i", MemType.INT32)
        assert i.in_register
        tr.read(i, site="s1")
        assert ops == []

    def test_write_emits_store(self):
        tr, ops = make_translator()
        arr = tr.declare_global("a", MemType.INT32, 4)
        tr.write(arr, 0, site="s1")
        assert ops[1].code is OpCode.STORE

    def test_const(self):
        tr, ops = make_translator()
        tr.const(MemType.FLOAT32, site="s")
        assert [op.code for op in ops] == [OpCode.IFETCH, OpCode.LOADC]
        assert ops[1].mem_type is MemType.FLOAT32


class TestRecurringAddresses:
    def test_same_site_same_ifetch_address(self):
        """Loop bodies produce recurring fetch addresses (Section 3.3)."""
        tr, ops = make_translator()
        arr = tr.declare_global("a", MemType.INT32, 16)
        for i in range(4):
            tr.read(arr, i, site="loop-body")
        fetches = [op.address for op in ops if op.code is OpCode.IFETCH]
        assert len(fetches) == 4
        assert len(set(fetches)) == 1

    def test_distinct_sites_distinct_addresses(self):
        tr, ops = make_translator()
        tr.const(site="a")
        tr.const(site="b")
        fetches = [op.address for op in ops if op.code is OpCode.IFETCH]
        assert fetches[0] != fetches[1]

    def test_addresses_are_instruction_aligned(self):
        tr, ops = make_translator(instr_bytes=4)
        tr.const(site="a")
        tr.const(site="b")
        fetches = [op.address for op in ops if op.code is OpCode.IFETCH]
        assert all(a % 4 == 0 for a in fetches)
        assert abs(fetches[1] - fetches[0]) == 4


class TestArithmetic:
    def test_kinds(self):
        tr, ops = make_translator()
        tr.arith("add", ArithType.DOUBLE, site="s")
        tr.arith("div", ArithType.INT, site="s2")
        codes = [op.code for op in ops]
        assert codes == [OpCode.IFETCH, OpCode.ADD, OpCode.IFETCH, OpCode.DIV]
        assert ops[1].arith_type is ArithType.DOUBLE

    def test_count(self):
        tr, ops = make_translator()
        tr.arith("mul", ArithType.FLOAT, count=3, site="s")
        assert sum(1 for op in ops if op.code is OpCode.MUL) == 3
        assert sum(1 for op in ops if op.code is OpCode.IFETCH) == 3

    def test_unknown_kind(self):
        tr, _ = make_translator()
        with pytest.raises(ValueError, match="unknown arithmetic"):
            tr.arith("fma", site="s")


class TestControl:
    def test_branch_defaults_to_self_loop(self):
        tr, ops = make_translator()
        tr.branch(site="loop")
        assert ops[1].code is OpCode.BRANCH
        assert ops[1].address == ops[0].address

    def test_branch_to_target_site(self):
        tr, ops = make_translator()
        tr.const(site="head")
        head_addr = ops[0].address
        tr.branch(site="tail", target_site="head")
        assert ops[-1].address == head_addr

    def test_call_ret_pair(self):
        tr, ops = make_translator()
        assert tr.vdt.scope_depth == 1
        tr.call(site="callsite")
        assert tr.vdt.scope_depth == 2
        tr.ret(site="retsite")
        assert tr.vdt.scope_depth == 1
        codes = [op.code for op in ops]
        assert codes == [OpCode.IFETCH, OpCode.CALL, OpCode.IFETCH,
                         OpCode.RET]
        # Return address = call site + one instruction.
        assert ops[3].address == ops[1].address + tr.abi.instr_bytes

    def test_unmatched_ret(self):
        tr, _ = make_translator()
        with pytest.raises(ValueError, match="without a matching call"):
            tr.ret(site="s")

    def test_nested_calls(self):
        tr, ops = make_translator()
        tr.call(site="outer")
        tr.call(site="inner")
        tr.ret(site="r1")
        tr.ret(site="r2")
        assert tr.vdt.scope_depth == 1


class TestCommunication:
    def test_direct_mapping(self):
        """Communication annotations map directly onto Table-1 ops."""
        tr, ops = make_translator()
        tr.send(1024, 3)
        tr.recv(3)
        tr.asend(64, 2)
        tr.arecv(2)
        assert [op.code for op in ops] == [
            OpCode.SEND, OpCode.RECV, OpCode.ASEND, OpCode.ARECV]
        assert ops[0].size == 1024 and ops[0].peer == 3
        # No ifetches around communication (library-call overheads are
        # modelled by the NIC's send/recv overhead parameters).
        assert all(op.code is not OpCode.IFETCH for op in ops)

    def test_ops_emitted_counter(self):
        tr, ops = make_translator()
        arr = tr.declare_global("a", MemType.INT32, 2)
        tr.read(arr, 0, site="s")
        tr.send(8, 1)
        assert tr.ops_emitted == len(ops) == 3
