"""The hybrid scheduler glue: stream hooks and node pipelines."""

from __future__ import annotations

import pytest

from repro.commmodel import MultiNodeModel
from repro.compmodel import SingleNodeModel, TaskExtractionStats
from repro.core.config import (
    CacheConfig,
    CacheLevelConfig,
    MachineConfig,
    NetworkConfig,
    NodeConfig,
    TopologyConfig,
)
from repro.hybrid import make_node_pipeline, stream_hooks
from repro.operations import ArithType, add, compute, recv, send
from repro.tracegen import InterleavedStream, NodeThread


def machine(n=2) -> MachineConfig:
    return MachineConfig(
        name="sched",
        node=NodeConfig(cache_levels=[CacheLevelConfig(data=CacheConfig())]),
        network=NetworkConfig(
            topology=TopologyConfig(kind="ring", dims=(n,)),
            send_overhead=0.0, recv_overhead=0.0)).validate()


class TestStreamHooks:
    def test_payload_source_reads_pending(self):
        def body(th):
            th.global_event(send(64, 1), payload="cargo")
        stream = InterleavedStream(NodeThread(0, body))
        payload_source, result_sink = stream_hooks(stream)
        next(stream)            # the send op; thread suspended
        assert payload_source() == "cargo"
        result_sink("reply")
        assert stream._result == "reply"
        stream.close()


class TestMakeNodePipeline:
    def test_static_task_ops_without_node_model(self):
        net = MultiNodeModel(machine())
        ops0 = [compute(100), send(64, 1)]
        ops1 = [recv(0)]
        net.sim.process(make_node_pipeline(net, 0, iter(ops0)))
        net.sim.process(make_node_pipeline(net, 1, iter(ops1)))
        net.sim.run(check_deadlock=True)
        assert net.engine.messages_delivered == 1
        assert net.activity[0].compute_cycles == 100.0

    def test_with_node_model_extracts_tasks(self):
        net = MultiNodeModel(machine())
        m = machine()
        node0 = SingleNodeModel(m.node, node_id=0)
        stats = TaskExtractionStats()
        mixed = [add(ArithType.INT)] * 10 + [send(64, 1)]
        net.sim.process(make_node_pipeline(net, 0, iter(mixed), node0,
                                           stats=stats))
        net.sim.process(make_node_pipeline(net, 1, iter([recv(0)])))
        net.sim.run(check_deadlock=True)
        assert stats.computational_ops == 10
        assert stats.tasks_emitted == 1
        assert net.activity[0].compute_cycles == pytest.approx(
            stats.total_task_cycles)

    def test_with_stream_round_trips_payloads(self):
        net = MultiNodeModel(machine())
        got = []

        def sender_body(th):
            th.global_event(send(64, 1), payload="hello")

        def receiver_body(th):
            got.append(th.global_event(recv(0)))

        m = machine()
        streams = [InterleavedStream(NodeThread(0, sender_body)),
                   InterleavedStream(NodeThread(1, receiver_body))]
        models = [SingleNodeModel(m.node, node_id=i) for i in range(2)]
        try:
            for i, stream in enumerate(streams):
                net.sim.process(make_node_pipeline(net, i, stream,
                                                   models[i], stream))
            net.sim.run(check_deadlock=True)
        finally:
            for s in streams:
                s.close()
        assert got == ["hello"]
