"""Chaos campaigns: spec expansion, SLO reduction, campaign runs.

Covers the three layers of :mod:`repro.chaos` — declarative campaign
specs expanding into fault-plan families, the SLO/invariant reduction
over campaign rows, and the end-to-end sharded campaign runner — plus
the determinism contract the CI smoke job relies on: byte-identical
JSON verdicts across reruns and worker counts, and a severity-0 rung
bit-identical to the fault-free baseline row.
"""

from __future__ import annotations

import json

import pytest

from repro.chaos import (
    AppCampaignRunner,
    CampaignSpec,
    ChaosResult,
    Rung,
    as_campaign_spec,
    check_ladder_monotonicity,
    evaluate_slos,
    run_campaign,
)
from repro.core.config import ConfigError
from repro.core.workbench import Workbench
from repro.faults import FaultPlan, LinkFault, TransportConfig
from repro.machines.presets import t805_grid
from repro.observe import MetricRegistry, Tracer
from repro.topology import mesh


# ---------------------------------------------------------------------------
# Shared recipes (module level: campaign runners cross process pools)
# ---------------------------------------------------------------------------

def lossy_base(p: float = 0.02, *, seed: int = 7) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        link_faults=[LinkFault(drop_prob=p)],
        transport=TransportConfig(timeout_cycles=50_000.0,
                                  backoff_factor=1.0, max_retries=60))


def demo_spec() -> CampaignSpec:
    return CampaignSpec(
        name="demo",
        base=lossy_base(),
        generators=[
            {"kind": "severity_ladder", "name": "sev",
             "factors": [0, 1, 3]},
            {"kind": "single_link_down", "end": 5_000.0},
        ],
        slos=[
            {"kind": "availability", "min_fraction": 1.0},
            {"kind": "retransmission_budget", "max_retransmissions": 50},
            {"kind": "latency_inflation", "max_factor": 10.0},
            {"kind": "single_link_survival", "max_retransmissions": 50},
        ])


def demo_runner() -> AppCampaignRunner:
    return AppCampaignRunner("pingpong", size=256, repeats=2)


def run_demo(**kwargs) -> ChaosResult:
    return run_campaign(demo_spec(), t805_grid(2, 2), demo_runner(),
                        **kwargs)


# ---------------------------------------------------------------------------
# CampaignSpec: serialization + validation
# ---------------------------------------------------------------------------

class TestCampaignSpec:
    def test_roundtrip_dict_json_file(self, tmp_path):
        spec = demo_spec()
        assert CampaignSpec.from_dict(spec.to_dict()) == spec
        assert CampaignSpec.from_json(spec.to_json()) == spec
        path = tmp_path / "spec.json"
        spec.save(path)
        assert CampaignSpec.load(path) == spec

    def test_as_campaign_spec_forms(self, tmp_path):
        spec = demo_spec()
        assert as_campaign_spec(spec) is spec
        assert as_campaign_spec(spec.to_dict()) == spec
        path = tmp_path / "spec.json"
        spec.save(path)
        assert as_campaign_spec(str(path)) == spec
        with pytest.raises(ConfigError, match="cannot interpret"):
            as_campaign_spec(42)
        with pytest.raises(ConfigError, match="cannot read"):
            as_campaign_spec(str(tmp_path / "missing.json"))

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="unknown campaign-spec"):
            CampaignSpec.from_dict({"generators": [], "rungs": []})

    def test_digest_excludes_names_tracks_content(self):
        a, b = demo_spec(), demo_spec()
        b.name = "relabelled"
        b.base.name = "also-relabelled"
        assert a.digest() == b.digest()
        c = demo_spec()
        c.generators[0]["factors"] = [0, 1, 4]
        assert a.digest() != c.digest()

    @pytest.mark.parametrize("gen, match", [
        ({"kind": "warp_core_breach"}, "unknown generator"),
        ({"kind": "severity_ladder"}, "requires 'factors'"),
        ({"kind": "severity_ladder", "factors": []}, "no factors"),
        ({"kind": "severity_ladder", "factors": [-1.0]}, ">= 0"),
        ({"kind": "single_link_down"}, "requires 'end'"),
        ({"kind": "single_link_down", "end": 0.0}, "interval"),
        ({"kind": "single_link_down", "start": 9.0, "end": 5.0},
         "interval"),
        ({"kind": "correlated_links"}, "requires 'groups'"),
        ({"kind": "correlated_links", "groups": []}, "no groups"),
        ({"kind": "correlated_links", "groups": [[]]}, "group is empty"),
        ({"kind": "correlated_links", "groups": [[[0]]],
          "drop_prob": 0.1}, "pair"),
        ({"kind": "correlated_links", "groups": [[[0, 1]]],
          "drop_prob": 0.7, "corrupt_prob": 0.6}, "sum <= 1"),
        ({"kind": "correlated_links", "groups": [[[0, 1]]]},
         "needs drop_prob or corrupt_prob"),
        ({"kind": "rolling_outage", "count": 2}, "requires 'window'"),
        ({"kind": "rolling_outage", "window": 5.0}, "requires 'count'"),
        ({"kind": "rolling_outage", "window": 5.0, "count": 0},
         "count >= 1"),
    ])
    def test_validate_rejects_bad_generators(self, gen, match):
        spec = CampaignSpec(base=lossy_base(), generators=[gen])
        with pytest.raises(ConfigError, match=match):
            spec.validate()

    def test_validate_rejects_bad_slos(self):
        spec = demo_spec()
        spec.slos.append({"kind": "five_nines"})
        with pytest.raises(ConfigError, match="unknown SLO"):
            spec.validate()
        orphan = CampaignSpec(
            base=lossy_base(),
            generators=[{"kind": "severity_ladder", "factors": [1]}],
            slos=[{"kind": "single_link_survival",
                   "max_retransmissions": 3}])
        with pytest.raises(ConfigError, match="requires a"):
            orphan.validate()

    def test_ladder_without_base_rejected(self):
        spec = CampaignSpec(
            generators=[{"kind": "severity_ladder", "factors": [1]}])
        with pytest.raises(ConfigError, match="needs a base plan"):
            spec.validate()

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigError, match="no generators"):
            CampaignSpec().validate()


# ---------------------------------------------------------------------------
# Rung expansion against a topology
# ---------------------------------------------------------------------------

class TestRungExpansion:
    def test_baseline_rung_is_first_and_empty(self):
        rungs = demo_spec().rungs(mesh(2, 2))
        assert rungs[0].label == "baseline"
        assert rungs[0].plan is None
        assert rungs[0].coords == {"generator": "baseline"}

    def test_severity_ladder_rungs(self):
        rungs = demo_spec().rungs(mesh(2, 2))
        ladder = [r for r in rungs
                  if r.coords.get("generator") == "severity_ladder"]
        assert [r.label for r in ladder] == ["sevx0", "sevx1", "sevx3"]
        assert ladder[0].plan is None              # severity 0 normalizes
        assert ladder[1].plan.link_faults[0].drop_prob == \
            pytest.approx(0.02)
        assert ladder[2].plan.link_faults[0].drop_prob == \
            pytest.approx(0.06)
        assert [r.coords["severity"] for r in ladder] == [0, 1, 3]

    def test_single_link_down_covers_every_link(self):
        topo = mesh(2, 2)
        rungs = demo_spec().rungs(topo)
        pack = [r for r in rungs
                if r.coords.get("generator") == "single_link_down"]
        undirected = {(u, v) for u, v in topo.links() if u < v}
        assert len(pack) == len(undirected)        # 4 links on a 2x2 mesh
        for rung in pack:
            assert len(rung.plan.link_down) == 2   # both directions
            fwd, rev = rung.plan.link_down
            assert (fwd.src, fwd.dst) == (rev.dst, rev.src)
            assert fwd.start == 0.0 and fwd.end == 5_000.0
            # Severity probabilities do NOT leak into outage rungs, but
            # the base's transport budget does.
            assert rung.plan.link_faults == []
            assert rung.plan.transport.max_retries == 60

    def test_single_link_down_directed(self):
        spec = CampaignSpec(generators=[
            {"kind": "single_link_down", "end": 100.0,
             "bidirectional": False}])
        rungs = spec.rungs(mesh(2, 2))
        pack = [r for r in rungs if r.plan is not None]
        assert len(pack) == 8                      # every directed link
        assert all(len(r.plan.link_down) == 1 for r in pack)

    def test_correlated_links_one_rung_per_group(self):
        spec = CampaignSpec(
            name="corr",
            generators=[{"kind": "correlated_links", "name": "pair",
                         "drop_prob": 0.2, "corrupt_prob": 0.1,
                         "groups": [[[0, 1], [1, 0]], [[2, 3]]]}])
        rungs = spec.rungs(mesh(2, 2))
        groups = [r for r in rungs if r.plan is not None]
        assert [r.label for r in groups] == ["pair.g0", "pair.g1"]
        assert len(groups[0].plan.link_faults) == 2
        rule = groups[0].plan.link_faults[0]
        assert (rule.src, rule.dst) == (0, 1)
        assert rule.drop_prob == 0.2 and rule.corrupt_prob == 0.1
        assert groups[0].coords["links"] == "0>1,1>0"

    def test_rolling_outage_windows_advance(self):
        spec = CampaignSpec(generators=[
            {"kind": "rolling_outage", "name": "roll", "window": 100.0,
             "step": 250.0, "count": 3}])
        rungs = [r for r in spec.rungs(mesh(2, 2)) if r.plan is not None]
        assert [r.label for r in rungs] == \
            ["roll.t0", "roll.t250", "roll.t500"]
        spans = [(r.plan.link_down[0].start, r.plan.link_down[0].end)
                 for r in rungs]
        assert spans == [(0.0, 100.0), (250.0, 350.0), (500.0, 600.0)]
        # Wildcard outage: the whole network blinks.
        assert rungs[0].plan.link_down[0].src is None

    def test_duplicate_labels_rejected(self):
        spec = CampaignSpec(
            base=lossy_base(),
            generators=[
                {"kind": "severity_ladder", "name": "sev", "factors": [1]},
                {"kind": "severity_ladder", "name": "sev", "factors": [1]},
            ])
        with pytest.raises(ConfigError, match="duplicate"):
            spec.rungs(mesh(2, 2))


# ---------------------------------------------------------------------------
# SLO reduction + ladder invariant (pure row folding, no simulation)
# ---------------------------------------------------------------------------

def _row(rung, gen, **kw) -> dict:
    row = {"rung": rung, "generator": gen, "total_cycles": 100.0,
           "mean_latency": 10.0, "delivered": 4, "dropped": 0,
           "corrupted": 0, "retransmissions": 0, "delivery_failed": 0}
    row.update(kw)
    return row


class TestSLOs:
    def test_availability(self):
        rows = [_row("baseline", "baseline"),
                _row("a", "severity_ladder"),
                _row("b", "severity_ladder", delivery_failed=1)]
        (v,) = evaluate_slos([{"kind": "availability",
                               "min_fraction": 0.5}], rows)
        assert v.passed and "1/2" in v.detail
        (v,) = evaluate_slos([{"kind": "availability",
                               "min_fraction": 1.0}], rows)
        assert not v.passed and "'b'" not in v.detail  # names listed plain
        assert "b" in v.detail
        # An error row counts against availability too.
        rows[1]["error"] = "DeliveryFailed: boom"
        (v,) = evaluate_slos([{"kind": "availability",
                               "min_fraction": 0.5}], rows)
        assert not v.passed

    def test_retransmission_budget(self):
        rows = [_row("a", "severity_ladder", retransmissions=3),
                _row("b", "severity_ladder", retransmissions=9)]
        (v,) = evaluate_slos([{"kind": "retransmission_budget",
                               "max_retransmissions": 9}], rows)
        assert v.passed and v.worst == {"rung": "b", "retransmissions": 9}
        (v,) = evaluate_slos([{"kind": "retransmission_budget",
                               "max_retransmissions": 8}], rows)
        assert not v.passed
        with pytest.raises(ConfigError, match="max_retransmissions"):
            evaluate_slos([{"kind": "retransmission_budget"}], rows)

    def test_latency_inflation(self):
        rows = [_row("baseline", "baseline", mean_latency=10.0),
                _row("a", "severity_ladder", mean_latency=25.0)]
        (v,) = evaluate_slos([{"kind": "latency_inflation",
                               "max_factor": 2.5}], rows)
        assert v.passed and v.worst["inflation"] == pytest.approx(2.5)
        (v,) = evaluate_slos([{"kind": "latency_inflation",
                               "max_factor": 2.0}], rows)
        assert not v.passed
        # No baseline row -> cannot judge -> fail loudly, not silently.
        (v,) = evaluate_slos([{"kind": "latency_inflation",
                               "max_factor": 2.0}], rows[1:])
        assert not v.passed and "baseline" in v.detail

    def test_single_link_survival(self):
        rows = [_row("link0-1-down", "single_link_down",
                     retransmissions=2),
                _row("link2-3-down", "single_link_down",
                     retransmissions=7)]
        (v,) = evaluate_slos([{"kind": "single_link_survival",
                               "max_retransmissions": 7}], rows)
        assert v.passed and "all 2" in v.detail
        rows[1]["delivery_failed"] = 1
        (v,) = evaluate_slos([{"kind": "single_link_survival",
                               "max_retransmissions": 7}], rows)
        assert not v.passed and "link2-3-down" in v.detail

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown SLO"):
            evaluate_slos([{"kind": "nope"}], [])


class TestLadderInvariant:
    @staticmethod
    def ladder_rows(drops):
        return [_row(f"sevx{i}", "severity_ladder", ladder="sev",
                     severity=float(i), dropped=d, retransmissions=d)
                for i, d in enumerate(drops)]

    def test_monotone_ladder_is_clean(self):
        assert check_ladder_monotonicity(self.ladder_rows([0, 2, 2, 5])) \
            == []

    def test_violation_is_structured(self):
        violations = check_ladder_monotonicity(
            self.ladder_rows([0, 4, 1]))
        assert len(violations) == 2      # dropped AND retransmissions fell
        v = violations[0]
        assert v["ladder"] == "sev" and v["column"] == "dropped"
        assert (v["prev_rung"], v["rung"]) == ("sevx1", "sevx2")
        assert (v["prev_value"], v["value"]) == (4, 1)
        assert "fell from 4" in v["detail"]

    def test_rows_sorted_by_severity_not_arrival(self):
        rows = self.ladder_rows([0, 1, 2])
        assert check_ladder_monotonicity(list(reversed(rows))) == []

    def test_error_rows_and_other_generators_skipped(self):
        rows = self.ladder_rows([0, 3])
        rows.append(_row("sevx9", "severity_ladder", ladder="sev",
                         severity=9.0, error="DeliveryFailed: gone"))
        rows.append(_row("link0-1-down", "single_link_down", dropped=999))
        assert check_ladder_monotonicity(rows) == []

    def test_ladders_checked_independently(self):
        rows = self.ladder_rows([0, 5])
        rows += [_row(f"bx{i}", "severity_ladder", ladder="b",
                      severity=float(i), dropped=d)
                 for i, d in enumerate([1, 0])]
        violations = check_ladder_monotonicity(rows)
        assert {v["ladder"] for v in violations} == {"b"}


# ---------------------------------------------------------------------------
# End-to-end campaign runs
# ---------------------------------------------------------------------------

class TestRunCampaign:
    def test_demo_campaign_passes_all_slos(self):
        result = run_demo()
        assert result.ok
        assert [v.passed for v in result.verdicts] == [True] * 4
        assert result.violations == []
        assert len(result.rows) == 8       # baseline + 3 ladder + 4 links
        assert result.rows[0]["rung"] == "baseline"
        # Uniform schema on every row, fault-free rungs included.
        for row in result.rows:
            for col in ("total_cycles", "mean_latency", "delivered",
                        "dropped", "retransmissions", "delivery_failed"):
                assert col in row

    def test_severity_zero_rung_equals_baseline_bit_for_bit(self):
        result = run_demo()
        rows = {r["rung"]: r for r in result.rows}
        strip = ("rung", "generator", "ladder", "severity")
        baseline = {k: v for k, v in rows["baseline"].items()
                    if k not in strip}
        sev0 = {k: v for k, v in rows["sevx0"].items() if k not in strip}
        assert json.dumps(baseline, sort_keys=True) == \
            json.dumps(sev0, sort_keys=True)

    def test_worker_counts_and_reruns_are_byte_identical(self):
        serial = run_demo().to_json()
        assert run_demo().to_json() == serial
        assert run_demo(workers=3).to_json() == serial

    def test_cache_cold_then_warm(self, tmp_path):
        cold = run_demo(cache=str(tmp_path))
        # The sevx0 rung shares the baseline's key: one in-run hit, and
        # only 7 distinct simulations stored for 8 rungs.
        assert cold.cache_stats == {"hits": 1, "misses": 7, "stores": 7}
        from repro.parallel import ResultCache
        warm = run_demo(cache=ResultCache(tmp_path), workers=2)
        assert warm.cache_stats == {"hits": 8, "misses": 0, "stores": 0}
        assert warm.to_json() == cold.to_json()

    def test_progress_fires_per_rung_in_order(self):
        seen = []
        run_demo(progress=lambda done, total, row:
                 seen.append((done, total, row["rung"])))
        assert [s[0] for s in seen] == list(range(1, 9))
        assert all(s[1] == 8 for s in seen)
        assert seen[0][2] == "baseline"

    def test_timing_column_is_kept_out_of_json(self):
        result = run_demo(timing=True)
        assert all("wall_time_s" in row for row in result.rows)
        assert "wall_time_s" not in json.dumps(result.to_dict())
        assert "wall_time_s" in result.format()

    def test_failing_slo_fails_the_campaign(self):
        spec = demo_spec()
        spec.slos = [{"kind": "retransmission_budget",
                      "max_retransmissions": 0}]
        result = run_campaign(spec, t805_grid(2, 2), demo_runner())
        assert not result.ok
        assert not result.verdicts[0].passed
        assert "FAIL" in result.format()

    def test_undeliverable_rung_is_captured_with_columns(self):
        # A rung whose outage swallows the whole run: the transport
        # gives up, and the row still carries the fault-metric columns.
        spec = CampaignSpec(
            name="dead",
            base=FaultPlan(seed=1, transport=TransportConfig(
                timeout_cycles=500.0, backoff_factor=1.0, max_retries=0,
                degraded_routing=False)),
            generators=[{"kind": "rolling_outage", "window": 1e9,
                         "count": 1}],
            slos=[{"kind": "availability", "min_fraction": 1.0}])
        result = run_campaign(spec, t805_grid(2, 2), demo_runner())
        assert not result.ok
        (dead,) = [r for r in result.rows if "error" in r]
        assert dead["rung"] == "roll0.t0"
        assert dead["delivery_failed"] >= 1
        assert "retransmissions" in dead and "dropped" in dead

    def test_seeded_monotonicity_violation_is_caught(self, monkeypatch):
        """End-to-end invariant check: sabotage ``scaled`` so severity
        descends, and the campaign must flag the ladder."""
        original = FaultPlan.scaled

        def sabotaged(self, factor, name=""):
            return original(self, max(0.0, 3.0 - factor), name=name)

        monkeypatch.setattr(FaultPlan, "scaled", sabotaged)
        spec = demo_spec()
        spec.generators = [spec.generators[0]]
        spec.slos = []
        result = run_campaign(spec, t805_grid(2, 2), demo_runner())
        assert not result.ok
        assert result.violations
        assert result.violations[0]["ladder"] == "sev"
        assert "monotonicity" in result.format()

    def test_tracer_and_registry_integration(self):
        tracer = Tracer()
        registry = MetricRegistry()
        result = run_demo(tracer=tracer, registry=registry)
        by_cat = tracer.counts_by_category()
        assert by_cat["chaos"] == 8 + 3 * 8       # instants + 3 counters
        doc = tracer.to_chrome()
        from repro.observe import validate_chrome_trace
        validate_chrome_trace(doc)
        snap = registry.snapshot()
        assert snap["chaos.campaign.rungs"] == 8
        assert snap["chaos.campaign.ok"] == int(result.ok)
        assert snap["chaos.campaign.slos_passed"] == 4


class TestWorkbenchAndRunner:
    def test_workbench_chaos_with_application(self):
        wb = Workbench(t805_grid(2, 2))
        result = wb.chaos(demo_spec(), application="pingpong")
        assert isinstance(result, ChaosResult)
        assert len(result.rows) == 8

    def test_workbench_chaos_arg_exclusivity(self):
        wb = Workbench(t805_grid(2, 2))
        with pytest.raises(ValueError, match="exactly one"):
            wb.chaos(demo_spec())
        with pytest.raises(ValueError, match="exactly one"):
            wb.chaos(demo_spec(), demo_runner(), application="pingpong")

    def test_app_runner_validates_name(self):
        with pytest.raises(ConfigError, match="unknown app"):
            AppCampaignRunner("doom")

    def test_campaign_row_uniform_schema(self):
        runner = demo_runner()
        machine = t805_grid(2, 2)
        clean = runner(machine)
        faulted = runner(machine, faults=lossy_base(0.3))
        assert set(clean) == set(faulted)
        assert clean["dropped"] == 0 and clean["delivery_failed"] == 0
        assert faulted["dropped"] > 0

    def test_rung_dataclass_defaults(self):
        rung = Rung("x", None)
        assert rung.coords == {}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestChaosCLI:
    def run_cli(self, tmp_path, capsys, *extra):
        from repro.cli import main
        path = tmp_path / "spec.json"
        demo_spec().save(path)
        code = main(["chaos", "pingpong", "--campaign", str(path),
                     "--size", "256", "--repeats", "2", *extra])
        out, err = capsys.readouterr()
        return code, out, err

    def test_text_report(self, tmp_path, capsys):
        code, out, err = self.run_cli(tmp_path, capsys)
        assert code == 0
        assert "chaos campaign 'demo'" in out
        assert "campaign verdict: PASS" in out

    def test_json_is_deterministic_and_stderr_carries_cache(
            self, tmp_path, capsys):
        code1, out1, err1 = self.run_cli(
            tmp_path, capsys, "--json", "--cache-dir",
            str(tmp_path / "cache"))
        code2, out2, err2 = self.run_cli(
            tmp_path, capsys, "--json", "--cache-dir",
            str(tmp_path / "cache"), "--workers", "2")
        assert code1 == code2 == 0
        assert out1 == out2                       # cold == warm, stdout
        assert "misses" in err1 and "8 hits" in err2
        doc = json.loads(out1)
        assert doc["ok"] is True and doc["rungs"] == 8

    def test_failing_campaign_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main
        spec = demo_spec()
        spec.slos = [{"kind": "retransmission_budget",
                      "max_retransmissions": 0}]
        path = tmp_path / "bad.json"
        spec.save(path)
        assert main(["chaos", "pingpong", "--campaign", str(path),
                     "--size", "256", "--repeats", "2"]) == 1

    def test_bad_spec_is_a_clean_error(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "broken.json"
        path.write_text(json.dumps({"generators": [{"kind": "nope"}]}))
        with pytest.raises(SystemExit, match="bad campaign spec"):
            main(["chaos", "pingpong", "--campaign", str(path)])

    def test_unknown_app_rejected(self, tmp_path):
        from repro.cli import main
        path = tmp_path / "spec.json"
        demo_spec().save(path)
        with pytest.raises(SystemExit, match="unknown app"):
            main(["chaos", "quake", "--campaign", str(path)])

    def test_trace_out(self, tmp_path, capsys):
        code, _out, err = self.run_cli(
            tmp_path, capsys, "--trace-out", str(tmp_path / "t.json"))
        assert code == 0
        assert (tmp_path / "t.json").exists()
        assert "wrote" in err
