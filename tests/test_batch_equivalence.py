"""Property tests: the batched computational model is *exact*.

``repro.compmodel.batch`` claims byte-identical results to the seed
per-op loop — same yielded stream, same floating-point cycle totals
(sequential accumulation order preserved), same statistics, same
exceptions.  Hypothesis drives random mixed traces (valid and invalid
operations, all container types) and random cost tables (including
zero-cost operations) through both implementations and requires exact
equality, not approximate.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compmodel.batch import (
    batched_fixed_cycles,
    extract_tasks_fast,
    fast_eligible,
    fixed_cost_table,
)
from repro.compmodel.node import SingleNodeModel
from repro.compmodel.tasks import TaskExtractionStats, _extract_tasks_scalar
from repro.core.config import (
    BusConfig,
    CacheConfig,
    CacheLevelConfig,
    CPUConfig,
    MemoryConfig,
    NodeConfig,
)
from repro.operations.ops import OpCode, Operation, recv, send
from repro.operations.optypes import ArithType


def _node_cfg(cpu: CPUConfig | None = None) -> NodeConfig:
    tiny = CacheConfig(name="tiny", size_bytes=128, line_bytes=16,
                       associativity=2, hit_cycles=1.0)
    return NodeConfig(
        cpu=cpu or CPUConfig(),
        cache_levels=[CacheLevelConfig(data=tiny)],
        bus=BusConfig(width_bytes=8, cycles_per_beat=1.0,
                      arbitration_cycles=1.0),
        memory=MemoryConfig(access_cycles=20.0, cycles_per_word=2.0,
                            word_bytes=8),
    )


# -- operation strategies -----------------------------------------------

_addr = st.integers(0, 2048)
_mem_dtype = st.integers(0, 5)
_bad_mem_dtype = st.integers(6, 9)
_arith_code = st.sampled_from([OpCode.ADD, OpCode.SUB, OpCode.MUL,
                               OpCode.DIV])
_flow_code = st.sampled_from([OpCode.BRANCH, OpCode.CALL, OpCode.RET])

_valid_op = st.one_of(
    st.builds(Operation, st.just(OpCode.LOAD), _mem_dtype, _addr),
    st.builds(Operation, st.just(OpCode.STORE), _mem_dtype, _addr),
    st.builds(Operation, st.just(OpCode.IFETCH), st.just(0), _addr),
    st.builds(Operation, st.just(OpCode.LOADC), _mem_dtype),
    st.builds(Operation, _arith_code, st.integers(0, 2)),
    st.builds(Operation, _flow_code, st.just(0), _addr),
)
_comm_op = st.one_of(
    st.builds(send, st.integers(1, 4096), st.integers(0, 3)),
    st.builds(recv, st.integers(0, 3)),
    # COMPUTE and reserved high codes pass through extraction as
    # communication-level operations.
    st.builds(Operation, st.sampled_from([OpCode.COMPUTE]),
              st.just(0), st.integers(0, 10)),
)
_invalid_op = st.one_of(
    st.builds(Operation, _arith_code, st.integers(3, 9)),     # KeyError
    st.builds(Operation, st.sampled_from([OpCode.LOAD, OpCode.STORE]),
              _bad_mem_dtype, _addr),                         # ValueError
)
_mixed_trace = st.lists(st.one_of(_valid_op, _comm_op), max_size=60)
_trace_with_invalid = st.tuples(
    st.lists(st.one_of(_valid_op, _comm_op), max_size=30),
    _invalid_op,
    st.lists(st.one_of(_valid_op, _comm_op), max_size=10),
).map(lambda t: t[0] + [t[1]] + t[2])


def _cpu_stats_tuple(model: SingleNodeModel) -> tuple:
    s = model.cpu.stats
    return (s.cycles, s.instructions, s.memory_accesses, s.ifetches,
            tuple(s.op_counts))


def _run_extraction(extractor, ops, wrap):
    """Drive one extractor; returns every observable plus any exception."""
    model = SingleNodeModel(_node_cfg())
    stats = TaskExtractionStats()
    yielded, error = [], None
    try:
        for op in extractor(model, wrap(ops), stats):
            yielded.append(op.to_tuple() if hasattr(op, "to_tuple")
                           else (op.code, op.dtype, op.arg, op.arg2))
    except (KeyError, ValueError) as exc:
        error = (type(exc).__name__, str(exc))
    return (yielded, error, stats.summary(), _cpu_stats_tuple(model),
            model.hierarchy.summary())


@pytest.mark.parametrize("wrap", [list, tuple, iter],
                         ids=["list", "tuple", "generator"])
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=_mixed_trace)
def test_extraction_identical_on_valid_traces(ops, wrap):
    scalar = _run_extraction(_extract_tasks_scalar, ops, wrap)
    fast = _run_extraction(extract_tasks_fast, ops, wrap)
    assert scalar == fast
    assert scalar[1] is None


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=_trace_with_invalid)
def test_extraction_identical_exceptions(ops):
    """Invalid operations raise the same exception at the same point,
    with identical statistics accumulated up to the failure."""
    scalar = _run_extraction(_extract_tasks_scalar, ops, list)
    fast = _run_extraction(extract_tasks_fast, ops, list)
    assert scalar == fast
    assert scalar[1] is not None


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=_mixed_trace)
def test_eligible_model_dispatch(ops):
    """The public extract_tasks under REPRO_KERNEL=fast equals scalar."""
    import os

    from repro.compmodel.tasks import extract_tasks

    saved = os.environ.get("REPRO_KERNEL")
    try:
        os.environ["REPRO_KERNEL"] = "fast"
        fast = _run_extraction(
            lambda m, o, s: extract_tasks(m, o, s), ops, list)
        os.environ["REPRO_KERNEL"] = "seed"
        seed = _run_extraction(
            lambda m, o, s: extract_tasks(m, o, s), ops, list)
    finally:
        if saved is None:
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = saved
    assert fast == seed


def test_fast_eligible_guards_subclasses():
    class CustomNode(SingleNodeModel):
        pass

    assert fast_eligible(SingleNodeModel(_node_cfg()))
    assert not fast_eligible(CustomNode(_node_cfg()))


# -- the fixed-cost batcher ---------------------------------------------

_cost = st.floats(min_value=0.0, max_value=64.0, allow_nan=False,
                  allow_infinity=False).map(lambda x: round(x, 2))


@st.composite
def _cpu_config(draw):
    """Random cost tables, explicitly including zero-cost operations."""
    def table():
        return {at: draw(_cost) for at in ArithType}
    return CPUConfig(
        add_cycles=table(), sub_cycles=table(),
        mul_cycles=table(), div_cycles=table(),
        loadc_cycles=draw(_cost), branch_cycles=draw(_cost),
        call_cycles=draw(_cost), ret_cycles=draw(_cost),
    )


_fixed_op = st.one_of(
    st.builds(Operation, st.just(OpCode.LOADC), _mem_dtype),
    st.builds(Operation, _arith_code, st.integers(0, 2)),
    st.builds(Operation, _flow_code, st.just(0), _addr),
)


@settings(max_examples=80, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(cfg=_cpu_config(), ops=st.lists(_fixed_op, max_size=80),
       start=_cost)
def test_batched_fixed_cycles_exact(cfg, ops, start):
    """The vectorized total equals the scalar sequential sum EXACTLY —
    same accumulation order, so bit-equal floats, not approximately."""
    table = fixed_cost_table(cfg)
    scalar = start
    for op in ops:
        scalar += table[int(op.code), op.dtype]
    batched = batched_fixed_cycles(cfg, ops, start=start)
    assert batched == scalar


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(cfg=_cpu_config(), ops=st.lists(_fixed_op, max_size=40))
def test_batched_fixed_cycles_matches_cpu(cfg, ops):
    """And both equal what the seed CPU charges for the same ops."""
    model = SingleNodeModel(_node_cfg(cpu=cfg))
    before = model.cpu.stats.cycles
    for op in ops:
        model.cpu.op_cycles(op)
    charged = model.cpu.stats.cycles - before
    assert batched_fixed_cycles(cfg, ops) == charged


def test_batched_fixed_cycles_rejects_bad_ops():
    cfg = CPUConfig()
    with pytest.raises(ValueError):
        batched_fixed_cycles(cfg, [Operation(OpCode.ADD, 5)])
    with pytest.raises(ValueError):
        batched_fixed_cycles(cfg, [Operation(OpCode.LOAD, 0, 4)])
    with pytest.raises(ValueError):
        batched_fixed_cycles(cfg, [Operation(OpCode.ADD, -1)])


def test_fixed_cost_table_shape():
    table = fixed_cost_table(CPUConfig())
    assert table.shape == (16, 8)
    assert table[int(OpCode.LOADC), 0] == 1.0
    assert np.isnan(table[int(OpCode.LOAD), 0])
    assert np.isnan(table[int(OpCode.ADD), 3])
