"""Cross-dispatcher equivalence: the fast kernel vs the seed kernel.

``REPRO_KERNEL=fast`` selects the ring-dispatch :class:`FastSimulator`
and the batched computational-model loop; this file is the PR-6 safety
net proving both dispatchers produce *identical* observables — event
order, timestamps, ``events_executed``, channel/resource accounting,
monitor snapshots and sweep rows — on golden scenarios and on
hypothesis-generated random process/channel/resource workloads.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.pearl import (
    Channel,
    Resource,
    Simulator,
    TallyMonitor,
    TimeWeightedMonitor,
)

KERNELS = ("seed", "fast")


def run_under(kernel: str, scenario) -> tuple:
    """Build ``scenario`` on a fresh simulator of ``kernel``; run it.

    ``scenario(sim)`` returns a zero-argument observables callable that
    is invoked after the run completes.
    """
    sim = Simulator(kernel=kernel)
    observe = scenario(sim)
    end = sim.run()
    return observe(), end, sim.now, sim.events_executed


def assert_equivalent(scenario) -> tuple:
    seed = run_under("seed", scenario)
    fast = run_under("fast", scenario)
    assert seed == fast
    return seed


# -- golden scenarios ---------------------------------------------------


class TestGoldenScenarios:
    def test_channel_pipeline(self):
        """Producers -> rendezvous stage -> bounded stage -> consumer."""

        def scenario(sim):
            log = []
            rendezvous = Channel(sim, capacity=0, name="sync")
            bounded = Channel(sim, capacity=2, name="buf")

            def producer(i):
                for k in range(3):
                    yield 0.5 * (i + 1)
                    yield rendezvous.send((i, k))
                    log.append(("sent", i, k, sim.now))

            def relay():
                for _ in range(6):
                    item = yield rendezvous.receive()
                    yield 0.25
                    yield bounded.send(item)
                    log.append(("relayed", item, sim.now))

            def consumer():
                for _ in range(6):
                    item = yield bounded.receive()
                    log.append(("consumed", item, sim.now))
                    yield 1.0

            for i in range(2):
                sim.process(producer(i), name=f"p{i}")
            sim.process(relay(), name="relay")
            sim.process(consumer(), name="consumer")

            def observe():
                return (log,
                        rendezvous.sent_count, rendezvous.received_count,
                        bounded.sent_count, bounded.received_count,
                        bounded.max_buffered)
            return observe

        assert_equivalent(scenario)

    def test_resource_contention(self):
        """FIFO grants, queue statistics and utilization must match."""

        def scenario(sim):
            log = []
            bus = Resource(sim, capacity=2, name="bus")

            def worker(i, units, hold):
                yield 0.1 * i
                yield bus.acquire(units)
                log.append(("granted", i, sim.now))
                yield hold
                bus.release(units)
                log.append(("released", i, sim.now))

            plans = [(0, 1, 3.0), (1, 2, 1.5), (2, 1, 2.0), (3, 2, 0.5),
                     (4, 1, 4.0)]
            for i, units, hold in plans:
                sim.process(worker(i, units, hold), name=f"w{i}")

            def observe():
                return (log, bus.acquisitions, bus.max_queue_len,
                        bus.total_wait_time, bus.utilization(horizon=20.0))
            return observe

        assert_equivalent(scenario)

    def test_timer_anyof_kill_mix(self):
        """Timers racing events, cancellations and mid-run kills."""

        def scenario(sim):
            log = []
            data = sim.event("data")

            def source():
                yield 3.0
                data.trigger("payload")

            def selector():
                t = sim.timer(50.0, value="timeout")
                idx, value = yield sim.any_of([data, t.event])
                log.append(("selected", idx, value, sim.now))
                log.append(("cancelled", t.cancel(), sim.now))

            def victim():
                yield 100.0
                log.append(("never", sim.now))

            def killer(victim_proc):
                yield 5.0
                victim_proc.kill()
                log.append(("killed", sim.now))

            sim.process(source(), name="source")
            sim.process(selector(), name="selector")
            v = sim.process(victim(), name="victim")
            sim.process(killer(v), name="killer")

            def observe():
                return (log, sim.live_processes)
            return observe

        assert_equivalent(scenario)

    def test_monitor_snapshots(self):
        """Tally and time-weighted monitors see identical sample streams."""

        def scenario(sim):
            lat = TallyMonitor("latency", keep_samples=True)
            depth = TimeWeightedMonitor(sim, "depth")

            def sampler(i):
                for k in range(4):
                    yield 0.75 * (i + 1)
                    lat.record(sim.now * (k + 1))
                    depth.add(+1)
                    yield 0.25
                    depth.add(-1)

            for i in range(3):
                sim.process(sampler(i), name=f"s{i}")

            def observe():
                merged = TallyMonitor("merged")
                merged.merge(lat)
                return (lat.summary(), tuple(lat.samples),
                        merged.summary(), depth.summary())
            return observe

        assert_equivalent(scenario)


# -- sweep rows ---------------------------------------------------------


def _sweep_rows() -> list:
    from repro import Workbench, generic_multicomputer, vary_machine
    from repro.apps import make_pingpong
    from repro.parallel import ParallelSweepRunner

    base = generic_multicomputer("mesh", (2, 2))
    bandwidths = [0.5, 2.0]
    machines = vary_machine(
        base, lambda m, bw: setattr(m.network, "link_bandwidth", bw),
        bandwidths)
    points = [({"link_bandwidth": bw}, m)
              for bw, m in zip(bandwidths, machines)]

    def runner(machine):
        res = Workbench(machine).run_hybrid(
            make_pingpong(size=512, repeats=2))
        return {"cycles": res.total_cycles,
                "events": res.comm.events_executed}

    return ParallelSweepRunner(workers=1).run(runner, points)


def test_sweep_rows_identical_across_kernels(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "seed")
    seed_rows = _sweep_rows()
    monkeypatch.setenv("REPRO_KERNEL", "fast")
    fast_rows = _sweep_rows()
    assert seed_rows == fast_rows
    assert all("error" not in row for row in seed_rows)


# -- hypothesis-generated workloads -------------------------------------

N_CHANNELS = 3
N_RESOURCES = 2

_hold = st.floats(min_value=0.0, max_value=4.0, allow_nan=False,
                  allow_infinity=False).map(lambda x: round(x, 3))
_action = st.one_of(
    st.tuples(st.just("hold"), _hold),
    st.tuples(st.just("send"), st.integers(0, N_CHANNELS - 1),
              st.integers(0, 99)),
    st.tuples(st.just("recv"), st.integers(0, N_CHANNELS - 1)),
    st.tuples(st.just("acquire"), st.integers(0, N_RESOURCES - 1)),
    st.tuples(st.just("release"), st.integers(0, N_RESOURCES - 1)),
    st.tuples(st.just("tally"), st.integers(0, 100)),
    st.tuples(st.just("level"), st.integers(-5, 5)),
)
_workload = st.lists(st.lists(_action, max_size=10), min_size=1, max_size=5)


def _interpret(sim, spec):
    """Build the random workload on ``sim``; return its observables fn.

    Every action appends a ``(tag, process, step, now)`` record, so the
    log *is* the event order plus timestamps.  Releases are guarded by a
    per-process held count (releasing what you don't hold is a config
    error, not a schedule difference).  Blocked processes simply remain
    blocked — identically under both kernels.
    """
    log = []
    channels = [Channel(sim, capacity=cap, name=f"ch{j}")
                for j, cap in enumerate((None, 0, 2))]
    resources = [Resource(sim, capacity=cap, name=f"res{j}")
                 for j, cap in enumerate((1, 2))]
    tally = TallyMonitor("tally", keep_samples=True)
    level = TimeWeightedMonitor(sim, "level")
    held = [[0] * N_RESOURCES for _ in spec]

    def body(pid, actions):
        for i, action in enumerate(actions):
            tag = action[0]
            if tag == "hold":
                yield action[1]
            elif tag == "send":
                yield channels[action[1]].send((pid, i, action[2]))
            elif tag == "recv":
                value = yield channels[action[1]].receive()
                log.append(("got", pid, i, sim.now, value))
            elif tag == "acquire":
                yield resources[action[1]].acquire()
                held[pid][action[1]] += 1
            elif tag == "release":
                if held[pid][action[1]]:
                    held[pid][action[1]] -= 1
                    resources[action[1]].release()
            elif tag == "tally":
                tally.record(float(action[1]))
            elif tag == "level":
                level.add(float(action[1]))
            log.append((tag, pid, i, sim.now))

    for pid, actions in enumerate(spec):
        sim.process(body(pid, actions), name=f"rand{pid}")

    def observe():
        return (
            log,
            tally.summary(), tuple(tally.samples), level.summary(),
            [(c.sent_count, c.received_count, c.max_buffered, len(c))
             for c in channels],
            [(r.acquisitions, r.max_queue_len, r.total_wait_time)
             for r in resources],
        )
    return observe


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=_workload)
def test_random_workloads_equivalent(spec):
    seed = run_under("seed", lambda sim: _interpret(sim, spec))
    fast = run_under("fast", lambda sim: _interpret(sim, spec))
    assert seed == fast


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=_workload)
def test_random_workloads_deterministic_per_kernel(spec):
    """Each dispatcher is also self-deterministic on random workloads."""
    for kernel in KERNELS:
        first = run_under(kernel, lambda sim: _interpret(sim, spec))
        second = run_under(kernel, lambda sim: _interpret(sim, spec))
        assert first == second
